//! Data-driven scheme construction: declarative [`SchemeConfig`]s resolved
//! against a [`SchemeRegistry`] of [`SchemeDescriptor`]s.
//!
//! The registry is the single place scheme names, parameters and defaults
//! live. Everything that used to hard-code scheme enums — the CLI's
//! `--scheme` parser, the bench matrix, the sweep engine — goes through
//! [`SchemeRegistry::build`], so a new protection variant (or a new axis of
//! an existing one, like ECC-cache geometry) is one descriptor, zero new
//! plumbing.
//!
//! Configs have three interchangeable spellings:
//!
//! - CLI shorthand: `killi:ratio=16,ecc_ways=8` ([`SchemeConfig::parse`])
//! - JSON (via the in-repo `killi-obs` parser):
//!   `{"name": "killi", "params": {"ratio": 16, "ecc_ways": 8}}`
//! - programmatic: [`SchemeConfig::new`] + [`SchemeConfig::with`]
//!
//! All failure modes are typed [`BuildError`]s — unknown schemes, unknown
//! or ill-typed parameters, and geometry that cannot be built (e.g. an ECC
//! cache smaller than one set) — never panics.

use std::fmt;
use std::sync::Arc;

use killi_fault::map::{layout, CellFault, FaultMap};
use killi_obs::{escape_json, parse_json, JsonValue, Sink};
use killi_sim::cache::CacheGeometry;
use killi_sim::protection::{LineProtection, Unprotected};

use crate::scheme::{KilliConfig, KilliScheme};

/// Everything a scheme needs at construction time: the die's fault map,
/// the L2 geometry it protects, and the observability sink to attach.
#[derive(Debug, Clone)]
pub struct BuildCtx {
    /// Fault map of the die at the operating point.
    pub fault_map: Arc<FaultMap>,
    /// Geometry of the protected L2.
    pub geometry: CacheGeometry,
    /// Sink handed to the scheme (and its sub-components).
    pub sink: Sink,
}

impl BuildCtx {
    /// A context with no observability.
    pub fn new(fault_map: Arc<FaultMap>, geometry: CacheGeometry) -> Self {
        BuildCtx {
            fault_map,
            geometry,
            sink: Sink::none(),
        }
    }

    /// Attaches a sink to the context.
    #[must_use]
    pub fn with_sink(mut self, sink: Sink) -> Self {
        self.sink = sink;
        self
    }
}

/// The typed parameter value shared with the fault-model registry; see
/// [`killi_obs::params`].
pub use killi_obs::params::ParamValue;

/// A declarative scheme instantiation: a registered name plus parameter
/// overrides (unset parameters take the descriptor's defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeConfig {
    /// Registered scheme name.
    pub name: String,
    /// Parameter overrides, in declaration order.
    pub params: Vec<(String, ParamValue)>,
}

impl SchemeConfig {
    /// A config with no overrides.
    pub fn new(name: &str) -> Self {
        SchemeConfig {
            name: name.to_string(),
            params: Vec::new(),
        }
    }

    /// Adds (or replaces) a parameter override.
    #[must_use]
    pub fn with(mut self, key: &str, value: ParamValue) -> Self {
        if let Some(slot) = self.params.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.params.push((key.to_string(), value));
        }
        self
    }

    /// The override for `key`, if set.
    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.params.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether this is the unprotected baseline (runs on a fault-free map
    /// in matrix/sweep runs).
    pub fn is_baseline(&self) -> bool {
        self.name == "baseline"
    }

    /// Parses the CLI shorthand `name` or `name:key=value,key=value`.
    pub fn parse(input: &str) -> Result<Self, BuildError> {
        let input = input.trim();
        let (name, rest) = match input.split_once(':') {
            Some((name, rest)) => (name.trim(), Some(rest)),
            None => (input, None),
        };
        if name.is_empty() {
            return Err(BuildError::Parse {
                input: input.to_string(),
                reason: "empty scheme name".to_string(),
            });
        }
        let mut config = SchemeConfig::new(name);
        if let Some(rest) = rest {
            for pair in rest.split(',') {
                let Some((key, value)) = pair.split_once('=') else {
                    return Err(BuildError::Parse {
                        input: input.to_string(),
                        reason: format!("parameter `{pair}` is not key=value"),
                    });
                };
                let key = key.trim();
                if key.is_empty() {
                    return Err(BuildError::Parse {
                        input: input.to_string(),
                        reason: "empty parameter name".to_string(),
                    });
                }
                config = config.with(key, ParamValue::parse(value.trim()));
            }
        }
        Ok(config)
    }

    /// Parses a comma-separated list of CLI shorthands. A segment opens a
    /// new scheme when it has no `=` or when a `:` precedes its first `=`
    /// (so `killi:ratio=16,ecc_ways=8,dected` is two schemes).
    pub fn parse_list(input: &str) -> Result<Vec<Self>, BuildError> {
        let mut specs: Vec<String> = Vec::new();
        for segment in input.split(',') {
            let starts_scheme = match (segment.find('='), segment.find(':')) {
                (None, _) => true,
                (Some(eq), Some(colon)) => colon < eq,
                (Some(_), None) => false,
            };
            match specs.last_mut() {
                Some(last) if !starts_scheme => {
                    last.push(',');
                    last.push_str(segment);
                }
                _ => specs.push(segment.to_string()),
            }
        }
        specs.iter().map(|s| SchemeConfig::parse(s)).collect()
    }

    /// Serializes as a JSON object: `{"name": ..., "params": {...}}`.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"name\": \"{}\"", escape_json(&self.name));
        if !self.params.is_empty() {
            out.push_str(", \"params\": {");
            for (i, (key, value)) in self.params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", escape_json(key), value.to_json()));
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// A config from a parsed JSON object.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, BuildError> {
        let parse_err = |reason: &str| BuildError::Parse {
            input: "<json>".to_string(),
            reason: reason.to_string(),
        };
        let Some(name) = v.get("name").and_then(JsonValue::as_str) else {
            return Err(parse_err("scheme object needs a string `name`"));
        };
        let mut config = SchemeConfig::new(name);
        match v.get("params") {
            None | Some(JsonValue::Null) => {}
            Some(JsonValue::Object(entries)) => {
                for (key, value) in entries {
                    let Some(value) = ParamValue::from_json(value) else {
                        return Err(parse_err(&format!(
                            "parameter `{key}` must be a number, bool or string"
                        )));
                    };
                    config = config.with(key, value);
                }
            }
            Some(_) => return Err(parse_err("`params` must be an object")),
        }
        Ok(config)
    }

    /// A config from JSON text.
    pub fn from_json(text: &str) -> Result<Self, BuildError> {
        let v = parse_json(text).map_err(|e| BuildError::Parse {
            input: "<json>".to_string(),
            reason: e.to_string(),
        })?;
        Self::from_json_value(&v)
    }

    /// A scheme list from JSON text: either a bare array of scheme
    /// objects or `{"schemes": [...]}`.
    pub fn list_from_json(text: &str) -> Result<Vec<Self>, BuildError> {
        let v = parse_json(text).map_err(|e| BuildError::Parse {
            input: "<json>".to_string(),
            reason: e.to_string(),
        })?;
        let items = v
            .as_array()
            .or_else(|| v.get("schemes").and_then(JsonValue::as_array))
            .ok_or_else(|| BuildError::Parse {
                input: "<json>".to_string(),
                reason: "expected a scheme array or {\"schemes\": [...]}".to_string(),
            })?;
        items.iter().map(Self::from_json_value).collect()
    }
}

impl fmt::Display for SchemeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for (i, (key, value)) in self.params.iter().enumerate() {
            write!(f, "{}{key}={value}", if i == 0 { ":" } else { "," })?;
        }
        Ok(())
    }
}

/// Why a [`SchemeConfig`] could not be resolved or built.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The config text (CLI shorthand or JSON) did not parse.
    Parse {
        /// The offending input.
        input: String,
        /// What went wrong.
        reason: String,
    },
    /// No descriptor registered under this name.
    UnknownScheme {
        /// The unregistered name.
        name: String,
    },
    /// The scheme has no such parameter.
    UnknownParam {
        /// Scheme name.
        scheme: String,
        /// The unrecognized parameter.
        param: String,
    },
    /// A parameter had the wrong type or an out-of-range value.
    InvalidParam {
        /// Scheme name.
        scheme: String,
        /// Parameter name.
        param: String,
        /// What went wrong.
        reason: String,
    },
    /// The parameters are individually fine but describe an unbuildable
    /// configuration (e.g. an ECC cache smaller than one set).
    Geometry {
        /// Scheme name.
        scheme: String,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Parse { input, reason } => {
                write!(f, "cannot parse scheme `{input}`: {reason}")
            }
            BuildError::UnknownScheme { name } => write!(f, "unknown scheme `{name}`"),
            BuildError::UnknownParam { scheme, param } => {
                write!(f, "scheme `{scheme}` has no parameter `{param}`")
            }
            BuildError::InvalidParam {
                scheme,
                param,
                reason,
            } => write!(f, "invalid `{scheme}` parameter `{param}`: {reason}"),
            BuildError::Geometry { scheme, reason } => {
                write!(f, "cannot build `{scheme}`: {reason}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// One declared parameter of a scheme.
#[derive(Debug, Clone)]
pub struct ParamSpec {
    /// Parameter name (the `key` in `key=value`).
    pub name: &'static str,
    /// One-line description for `killi schemes`.
    pub doc: &'static str,
    /// Default value (also fixes the expected type).
    pub default: ParamValue,
}

/// Parameters of one config after defaulting and type coercion.
#[derive(Debug, Clone)]
pub struct ResolvedParams {
    scheme: &'static str,
    values: Vec<(&'static str, ParamValue)>,
}

impl ResolvedParams {
    /// The scheme name these parameters resolve.
    pub fn scheme(&self) -> &'static str {
        self.scheme
    }

    fn get(&self, key: &str) -> &ParamValue {
        self.values
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("scheme `{}` has no `{key}` parameter", self.scheme))
    }

    /// An integer parameter (registry-validated to exist and be U64).
    pub fn u64(&self, key: &str) -> u64 {
        match self.get(key) {
            ParamValue::U64(v) => *v,
            other => panic!("parameter `{key}` is not u64: {other:?}"),
        }
    }

    /// A float parameter.
    pub fn f64(&self, key: &str) -> f64 {
        match self.get(key) {
            ParamValue::F64(v) => *v,
            ParamValue::U64(v) => *v as f64,
            other => panic!("parameter `{key}` is not f64: {other:?}"),
        }
    }

    /// A boolean parameter.
    pub fn bool(&self, key: &str) -> bool {
        match self.get(key) {
            ParamValue::Bool(v) => *v,
            other => panic!("parameter `{key}` is not bool: {other:?}"),
        }
    }

    /// A string parameter.
    pub fn str(&self, key: &str) -> &str {
        match self.get(key) {
            ParamValue::Str(v) => v,
            other => panic!("parameter `{key}` is not a string: {other:?}"),
        }
    }
}

/// Which cells of a line count against a scheme's fault budget (see
/// [`killi_fault::map::layout`]): always the data payload, plus the
/// in-array metadata cells the scheme actually stores there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellSpan {
    /// Data payload only (no in-array metadata).
    Data,
    /// Data plus the 4 stable-mode segmented-parity cells.
    DataParity4,
    /// Data plus the 16 training-mode segmented-parity cells.
    DataParity16,
    /// Data plus the SECDED checkbit cells.
    DataSecded,
    /// Data plus the DEC-TED checkbit cells.
    DataDected,
}

impl CellSpan {
    /// Whether `cell` falls inside the span.
    pub fn contains(self, cell: u16) -> bool {
        if layout::DATA.contains(&cell) {
            return true;
        }
        match self {
            CellSpan::Data => false,
            CellSpan::DataParity4 => layout::PARITY4.contains(&cell),
            CellSpan::DataParity16 => layout::PARITY16.contains(&cell),
            CellSpan::DataSecded => layout::SECDED.contains(&cell),
            CellSpan::DataDected => layout::DECTED.contains(&cell),
        }
    }
}

/// The static line-admissibility rule a resolved scheme implies: given
/// only a line's fault population, can the scheme keep the line in
/// service? This is the MBIST-oracle binning predicate — what the paper's
/// offline characterization (or Killi's converged runtime classification)
/// would decide — and what the `killi vmin` campaign probes per grid
/// voltage. It deliberately ignores runtime policy knobs (victim
/// priority, training cadence): those shape *when* a line is learned,
/// not *whether* it is ultimately usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineRule {
    /// Admissible when at most `max_faults` cells across `span` are
    /// faulty (per-line codes: parity classification, SECDED, DEC-TED).
    Total {
        /// Cells counting against the budget.
        span: CellSpan,
        /// Maximum tolerable faulty cells in the span.
        max_faults: u32,
    },
    /// The data payload divides into `block_cells`-cell blocks, each
    /// independently correcting up to `max_faults` faults (OLSC codes).
    PerBlock {
        /// Data cells per code block.
        block_cells: u32,
        /// Maximum tolerable faulty cells per block.
        max_faults: u32,
    },
}

impl LineRule {
    /// Whether a line with this fault population stays usable.
    pub fn admits(&self, faults: &[CellFault]) -> bool {
        match *self {
            LineRule::Total { span, max_faults } => {
                let count = faults.iter().filter(|f| span.contains(f.cell)).count();
                count <= max_faults as usize
            }
            LineRule::PerBlock {
                block_cells,
                max_faults,
            } => {
                let block = |c: u16| c as u32 / block_cells.max(1);
                for f in faults.iter().filter(|f| layout::DATA.contains(&f.cell)) {
                    let in_block = faults
                        .iter()
                        .filter(|g| {
                            layout::DATA.contains(&g.cell) && block(g.cell) == block(f.cell)
                        })
                        .count();
                    if in_block > max_faults as usize {
                        return false;
                    }
                }
                true
            }
        }
    }
}

/// Signature of a descriptor's build function: resolved parameters plus a
/// build context yield a scheme or a typed error.
pub type BuildFn = fn(&ResolvedParams, &BuildCtx) -> Result<Box<dyn LineProtection>, BuildError>;

/// A registered scheme: name, documentation, parameter schema, and the
/// label/build functions.
pub struct SchemeDescriptor {
    /// Registered name (what `--scheme` selects).
    pub name: &'static str,
    /// One-line description for `killi schemes`.
    pub doc: &'static str,
    /// Declared parameters with defaults.
    pub params: Vec<ParamSpec>,
    /// Report label for a resolved config (the strings pinned by report
    /// schemas, e.g. `killi-1:64`).
    pub label: fn(&ResolvedParams) -> String,
    /// Builds the scheme (without sink attachment; the registry attaches
    /// the context's sink after a successful build).
    pub build: BuildFn,
    /// The static line-admissibility rule of a resolved config (the
    /// binning predicate the Vmin campaign evaluates per grid voltage).
    pub admissibility: fn(&ResolvedParams) -> LineRule,
}

impl fmt::Debug for SchemeDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchemeDescriptor")
            .field("name", &self.name)
            .field("params", &self.params)
            .finish()
    }
}

/// The ordered collection of registered schemes.
#[derive(Debug, Default)]
pub struct SchemeRegistry {
    schemes: Vec<SchemeDescriptor>,
}

impl SchemeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SchemeRegistry::default()
    }

    /// Registers a descriptor.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name — registrations are code, not data.
    pub fn register(&mut self, descriptor: SchemeDescriptor) {
        assert!(
            self.descriptor(descriptor.name).is_none(),
            "scheme `{}` registered twice",
            descriptor.name
        );
        self.schemes.push(descriptor);
    }

    /// The descriptor registered under `name`.
    pub fn descriptor(&self, name: &str) -> Option<&SchemeDescriptor> {
        self.schemes.iter().find(|d| d.name == name)
    }

    /// All descriptors, in registration order.
    pub fn descriptors(&self) -> &[SchemeDescriptor] {
        &self.schemes
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.schemes.iter().map(|d| d.name).collect()
    }

    /// Resolves a config against its descriptor: every override must name
    /// a declared parameter and coerce to its default's type.
    pub fn resolve(&self, config: &SchemeConfig) -> Result<ResolvedParams, BuildError> {
        let descriptor =
            self.descriptor(&config.name)
                .ok_or_else(|| BuildError::UnknownScheme {
                    name: config.name.clone(),
                })?;
        for (key, _) in &config.params {
            if !descriptor.params.iter().any(|p| p.name == key) {
                return Err(BuildError::UnknownParam {
                    scheme: config.name.clone(),
                    param: key.clone(),
                });
            }
        }
        let mut values = Vec::with_capacity(descriptor.params.len());
        for spec in &descriptor.params {
            let value = match config.get(spec.name) {
                None => spec.default.clone(),
                Some(over) => {
                    over.coerce_to(&spec.default)
                        .ok_or_else(|| BuildError::InvalidParam {
                            scheme: config.name.clone(),
                            param: spec.name.to_string(),
                            reason: format!(
                                "expected {} (default {}), got `{over}`",
                                spec.default.type_name(),
                                spec.default
                            ),
                        })?
                }
            };
            values.push((spec.name, value));
        }
        Ok(ResolvedParams {
            scheme: descriptor.name,
            values,
        })
    }

    /// Validates a config without building it.
    pub fn validate(&self, config: &SchemeConfig) -> Result<(), BuildError> {
        self.resolve(config).map(|_| ())
    }

    /// The report label of a config.
    pub fn label(&self, config: &SchemeConfig) -> Result<String, BuildError> {
        let resolved = self.resolve(config)?;
        let descriptor = self.descriptor(&config.name).expect("resolved above");
        Ok((descriptor.label)(&resolved))
    }

    /// Normalizes a config to its canonical spelling: every declared
    /// parameter spelled explicitly, in descriptor declaration order,
    /// with values coerced to the declared type. Any two configs that
    /// resolve to the same scheme — CLI shorthand, expanded JSON,
    /// reordered keys, defaults spelled out or omitted — canonicalize
    /// to equal [`SchemeConfig`]s, which is what content-addressed
    /// caching keys on.
    pub fn canonicalize(&self, config: &SchemeConfig) -> Result<SchemeConfig, BuildError> {
        let resolved = self.resolve(config)?;
        Ok(SchemeConfig {
            name: resolved.scheme.to_string(),
            params: resolved
                .values
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        })
    }

    /// The canonical JSON spelling of a config (see
    /// [`SchemeRegistry::canonicalize`]): equal schemes produce
    /// byte-identical JSON, suitable for hashing into a cache key.
    pub fn canonical_json(&self, config: &SchemeConfig) -> Result<String, BuildError> {
        Ok(self.canonicalize(config)?.to_json())
    }

    /// The static line-admissibility rule of a config (see [`LineRule`]).
    pub fn admissibility(&self, config: &SchemeConfig) -> Result<LineRule, BuildError> {
        let resolved = self.resolve(config)?;
        let descriptor = self.descriptor(&config.name).expect("resolved above");
        Ok((descriptor.admissibility)(&resolved))
    }

    /// Builds a config into a live scheme with the context's sink attached.
    pub fn build(
        &self,
        config: &SchemeConfig,
        ctx: &BuildCtx,
    ) -> Result<Box<dyn LineProtection>, BuildError> {
        let resolved = self.resolve(config)?;
        let descriptor = self.descriptor(&config.name).expect("resolved above");
        let mut scheme = (descriptor.build)(&resolved, ctx)?;
        scheme.attach_sink(ctx.sink.clone());
        Ok(scheme)
    }
}

/// Shared parameter spec for the ECC-cache ratio.
fn ratio_param(default: u64) -> ParamSpec {
    ParamSpec {
        name: "ratio",
        doc: "L2 lines per ECC-cache entry (1:N)",
        default: ParamValue::U64(default),
    }
}

/// Resolves Killi's ECC-cache geometry: either `ratio`, or an explicit
/// `ecc_sets` x `ecc_ways` that must tile the L2 line count exactly.
fn killi_geometry(p: &ResolvedParams, lines: usize) -> Result<(usize, usize), BuildError> {
    let ways = p.u64("ecc_ways") as usize;
    let sets = p.u64("ecc_sets") as usize;
    let ratio = if sets > 0 {
        let entries = sets * ways;
        if entries == 0 || !lines.is_multiple_of(entries) {
            return Err(BuildError::Geometry {
                scheme: p.scheme().to_string(),
                reason: format!(
                    "ecc_sets={sets} x ecc_ways={ways} does not divide {lines} L2 lines"
                ),
            });
        }
        lines / entries
    } else {
        p.u64("ratio") as usize
    };
    if ratio == 0 {
        return Err(BuildError::Geometry {
            scheme: p.scheme().to_string(),
            reason: "ratio must be positive".to_string(),
        });
    }
    Ok((ratio, ways))
}

/// Builds a [`KilliConfig`] from resolved core parameters.
fn killi_config(
    p: &ResolvedParams,
    base: KilliConfig,
    lines: usize,
) -> Result<KilliConfig, BuildError> {
    let (ratio, ways) = killi_geometry(p, lines)?;
    let mut config = KilliConfig {
        ecc_cache: crate::ecc_cache::EccCacheConfig { ratio, ways },
        ..base
    };
    config.check_latency = p.u64("check_latency") as u32;
    Ok(config)
}

/// Wraps a built [`KilliScheme`] construction, mapping geometry failures.
fn build_killi_scheme(
    p: &ResolvedParams,
    config: KilliConfig,
    ctx: &BuildCtx,
) -> Result<Box<dyn LineProtection>, BuildError> {
    let scheme = KilliScheme::try_new(
        config,
        Arc::clone(&ctx.fault_map),
        ctx.geometry.lines(),
        ctx.geometry.ways,
    )
    .map_err(|reason| BuildError::Geometry {
        scheme: p.scheme().to_string(),
        reason,
    })?;
    Ok(Box::new(scheme))
}

/// Parameter schema shared by every Killi-family descriptor.
fn killi_core_params(default_ratio: u64) -> Vec<ParamSpec> {
    vec![
        ratio_param(default_ratio),
        ParamSpec {
            name: "ecc_sets",
            doc: "explicit ECC-cache set count (0 = derive from ratio)",
            default: ParamValue::U64(0),
        },
        ParamSpec {
            name: "ecc_ways",
            doc: "ECC-cache associativity",
            default: ParamValue::U64(4),
        },
        ParamSpec {
            name: "check_latency",
            doc: "cycles added to every hit by the parity/ECC check",
            default: ParamValue::U64(1),
        },
    ]
}

/// Label of a Killi-family config: `<prefix>-1:<ratio>` normally, or
/// `<prefix>-ecc<sets>x<ways>` when explicit geometry overrides the ratio.
fn killi_label(prefix: &str, p: &ResolvedParams) -> String {
    let sets = p.u64("ecc_sets");
    if sets > 0 {
        format!("{prefix}-ecc{sets}x{}", p.u64("ecc_ways"))
    } else {
        format!("{prefix}-1:{}", p.u64("ratio"))
    }
}

/// The Killi steady state: segmented parity classifies lines over the
/// data payload plus the 4 stable-mode parity cells, and the decoupled
/// ECC cache's SECDED keeps any single-fault line usable.
const KILLI_RULE: LineRule = LineRule::Total {
    span: CellSpan::DataParity4,
    max_faults: 1,
};

/// Registers the unprotected baseline and the Killi family (the §4 design,
/// its §4.4 ablations, and the §5.2/§5.5/§5.6.2 extensions).
pub fn register_killi_schemes(registry: &mut SchemeRegistry) {
    registry.register(SchemeDescriptor {
        name: "baseline",
        doc: "unprotected L2 at nominal voltage (fault-free reference)",
        params: Vec::new(),
        label: |_| "baseline".to_string(),
        build: |_, _| Ok(Box::new(Unprotected::new())),
        admissibility: |_| LineRule::Total {
            span: CellSpan::Data,
            max_faults: 0,
        },
    });

    registry.register(SchemeDescriptor {
        name: "killi",
        doc: "the paper's scheme: DFH + segmented parity + decoupled ECC cache (§4)",
        params: {
            let mut params = killi_core_params(64);
            params.push(ParamSpec {
                name: "victim_priority",
                doc: "§4.4 victim priority b'01 > b'00 > b'10",
                default: ParamValue::Bool(true),
            });
            params.push(ParamSpec {
                name: "eviction_training",
                doc: "§4.4 classify b'01 lines on eviction",
                default: ParamValue::Bool(true),
            });
            params.push(ParamSpec {
                name: "coordinated_promotion",
                doc: "§4.4 promote ECC-cache entries with their L2 lines",
                default: ParamValue::Bool(true),
            });
            params
        },
        label: |p| {
            // Disabled policy switches must show in reports, or a sweep
            // axing over them emits indistinguishable rows.
            let mut label = killi_label("killi", p);
            for (flag, suffix) in [
                ("victim_priority", "-no-victim-prio"),
                ("eviction_training", "-no-evict-train"),
                ("coordinated_promotion", "-no-promotion"),
            ] {
                if !p.bool(flag) {
                    label.push_str(suffix);
                }
            }
            label
        },
        build: |p, ctx| {
            let mut config = killi_config(p, KilliConfig::with_ratio(1), ctx.geometry.lines())?;
            config.victim_priority = p.bool("victim_priority");
            config.eviction_training = p.bool("eviction_training");
            config.coordinated_promotion = p.bool("coordinated_promotion");
            build_killi_scheme(p, config, ctx)
        },
        // §4.4's policy switches change *when* lines are learned, never
        // which lines are ultimately usable: SECDED in the ECC cache keeps
        // any 1-fault line in service.
        admissibility: |_| KILLI_RULE,
    });

    registry.register(SchemeDescriptor {
        name: "killi-no-victim-prio",
        doc: "Killi ablation: §4.4 victim priority off",
        params: killi_core_params(64),
        label: |_| "killi-no-victim-prio".to_string(),
        build: |p, ctx| {
            let mut config = killi_config(p, KilliConfig::with_ratio(1), ctx.geometry.lines())?;
            config.victim_priority = false;
            build_killi_scheme(p, config, ctx)
        },
        admissibility: |_| KILLI_RULE,
    });

    registry.register(SchemeDescriptor {
        name: "killi-no-evict-train",
        doc: "Killi ablation: §4.4 eviction training off",
        params: killi_core_params(64),
        label: |_| "killi-no-evict-train".to_string(),
        build: |p, ctx| {
            let mut config = killi_config(p, KilliConfig::with_ratio(1), ctx.geometry.lines())?;
            config.eviction_training = false;
            build_killi_scheme(p, config, ctx)
        },
        admissibility: |_| KILLI_RULE,
    });

    registry.register(SchemeDescriptor {
        name: "killi-no-promotion",
        doc: "Killi ablation: §4.4 coordinated promotion off",
        params: killi_core_params(64),
        label: |_| "killi-no-promotion".to_string(),
        build: |p, ctx| {
            let mut config = killi_config(p, KilliConfig::with_ratio(1), ctx.geometry.lines())?;
            config.coordinated_promotion = false;
            build_killi_scheme(p, config, ctx)
        },
        admissibility: |_| KILLI_RULE,
    });

    registry.register(SchemeDescriptor {
        name: "killi-dected",
        doc: "Killi + §5.2 DEC-TED upgrade (two-fault lines stay usable)",
        params: killi_core_params(64),
        label: |p| killi_label("killi-dected", p),
        build: |p, ctx| {
            let mut config = killi_config(p, KilliConfig::with_ratio(1), ctx.geometry.lines())?;
            config.dected_upgrade = true;
            build_killi_scheme(p, config, ctx)
        },
        admissibility: |_| LineRule::Total {
            span: CellSpan::DataParity4,
            max_faults: 2,
        },
    });

    registry.register(SchemeDescriptor {
        name: "killi-invchk",
        doc: "Killi + §5.6.2 inverted-write check at install time",
        params: {
            let mut params = killi_core_params(64);
            params.push(ParamSpec {
                name: "penalty",
                doc: "cycles charged per inverted-write-checked fill",
                default: ParamValue::U64(4),
            });
            params
        },
        label: |p| killi_label("killi-invchk", p),
        build: |p, ctx| {
            let mut config = killi_config(p, KilliConfig::with_ratio(1), ctx.geometry.lines())?;
            config.inverted_write_check = true;
            config.inverted_check_penalty = p.u64("penalty") as u32;
            build_killi_scheme(p, config, ctx)
        },
        admissibility: |_| KILLI_RULE,
    });

    registry.register(SchemeDescriptor {
        name: "killi-olsc",
        doc: "Killi + §5.5 OLSC(8, 2) payloads (the low-Vmin chaser)",
        params: killi_core_params(8),
        label: |p| killi_label("killi-olsc", p),
        build: |p, ctx| {
            let mut config = killi_config(p, KilliConfig::with_olsc(1), ctx.geometry.lines())?;
            config.olsc_mode = true;
            build_killi_scheme(p, config, ctx)
        },
        // OLSC(8, 2) payloads: 64-cell data blocks, 2 corrections each.
        admissibility: |_| LineRule::PerBlock {
            block_cells: 64,
            max_faults: 2,
        },
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> SchemeRegistry {
        let mut reg = SchemeRegistry::new();
        register_killi_schemes(&mut reg);
        reg
    }

    fn ctx(lines: usize) -> BuildCtx {
        BuildCtx::new(
            Arc::new(FaultMap::fault_free(lines)),
            CacheGeometry {
                size_bytes: lines * 64,
                ways: 16,
                line_bytes: 64,
            },
        )
    }

    #[test]
    fn parses_shorthand_with_typed_values() {
        let c = SchemeConfig::parse("killi:ratio=16,victim_priority=false").unwrap();
        assert_eq!(c.name, "killi");
        assert_eq!(c.get("ratio"), Some(&ParamValue::U64(16)));
        assert_eq!(c.get("victim_priority"), Some(&ParamValue::Bool(false)));
        assert_eq!(c.to_string(), "killi:ratio=16,victim_priority=false");
    }

    #[test]
    fn parse_list_splits_on_scheme_starts() {
        let list = SchemeConfig::parse_list("killi:ratio=16,ecc_ways=8,dected,flair").unwrap();
        let names: Vec<&str> = list.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["killi", "dected", "flair"]);
        assert_eq!(list[0].get("ecc_ways"), Some(&ParamValue::U64(8)));

        let list = SchemeConfig::parse_list("dected,killi:ratio=32").unwrap();
        assert_eq!(list.len(), 2);
        assert_eq!(list[1].get("ratio"), Some(&ParamValue::U64(32)));
    }

    #[test]
    fn malformed_shorthand_is_a_typed_error() {
        assert!(matches!(
            SchemeConfig::parse("killi:ratio"),
            Err(BuildError::Parse { .. })
        ));
        assert!(matches!(
            SchemeConfig::parse(""),
            Err(BuildError::Parse { .. })
        ));
    }

    #[test]
    fn unknown_scheme_and_param_are_typed_errors() {
        let reg = registry();
        assert_eq!(
            reg.validate(&SchemeConfig::new("frobnicate")),
            Err(BuildError::UnknownScheme {
                name: "frobnicate".to_string()
            })
        );
        let cfg = SchemeConfig::new("killi").with("rato", ParamValue::U64(16));
        assert!(matches!(
            reg.validate(&cfg),
            Err(BuildError::UnknownParam { .. })
        ));
        let cfg = SchemeConfig::new("killi").with("ratio", ParamValue::Str("lots".into()));
        assert!(matches!(
            reg.validate(&cfg),
            Err(BuildError::InvalidParam { .. })
        ));
    }

    #[test]
    fn geometry_errors_are_typed_not_panics() {
        let reg = registry();
        // ways > entries: the ECC cache would be smaller than one set.
        let cfg = SchemeConfig::parse("killi:ratio=1024,ecc_ways=8").unwrap();
        let err = reg.build(&cfg, &ctx(1024)).map(|_| ()).unwrap_err();
        assert!(matches!(err, BuildError::Geometry { .. }), "{err}");
        // Explicit sets x ways that do not tile the L2.
        let cfg = SchemeConfig::parse("killi:ecc_sets=3,ecc_ways=4").unwrap();
        let err = reg.build(&cfg, &ctx(1024)).map(|_| ()).unwrap_err();
        assert!(matches!(err, BuildError::Geometry { .. }), "{err}");
        // ratio = 0.
        let cfg = SchemeConfig::parse("killi:ratio=0").unwrap();
        let err = reg.build(&cfg, &ctx(1024)).map(|_| ()).unwrap_err();
        assert!(matches!(err, BuildError::Geometry { .. }), "{err}");
    }

    #[test]
    fn labels_match_the_pinned_report_strings() {
        let reg = registry();
        let label = |s: &str| reg.label(&SchemeConfig::parse(s).unwrap()).unwrap();
        assert_eq!(label("baseline"), "baseline");
        assert_eq!(label("killi:ratio=16"), "killi-1:16");
        assert_eq!(label("killi"), "killi-1:64");
        assert_eq!(label("killi-dected:ratio=64"), "killi-dected-1:64");
        assert_eq!(label("killi-invchk:ratio=64"), "killi-invchk-1:64");
        assert_eq!(label("killi-olsc:ratio=8"), "killi-olsc-1:8");
        assert_eq!(label("killi-no-victim-prio"), "killi-no-victim-prio");
        assert_eq!(label("killi:ecc_sets=16,ecc_ways=8"), "killi-ecc16x8");
    }

    #[test]
    fn disabled_policy_switches_show_in_the_label() {
        let reg = registry();
        let label = |s: &str| reg.label(&SchemeConfig::parse(s).unwrap()).unwrap();
        assert_eq!(
            label("killi:victim_priority=false"),
            "killi-1:64-no-victim-prio"
        );
        assert_eq!(
            label("killi:ratio=16,eviction_training=false,coordinated_promotion=false"),
            "killi-1:16-no-evict-train-no-promotion"
        );
        // Explicit defaults leave the pinned strings untouched.
        assert_eq!(label("killi:victim_priority=true"), "killi-1:64");
    }

    #[test]
    fn explicit_geometry_builds_and_sweeps_new_axes() {
        let reg = registry();
        // 1024 lines / (16 sets x 8 ways) = ratio 8.
        let cfg = SchemeConfig::parse("killi:ecc_sets=16,ecc_ways=8").unwrap();
        let scheme = reg.build(&cfg, &ctx(1024)).unwrap();
        assert_eq!(scheme.name(), "killi");
    }

    #[test]
    fn json_round_trip_preserves_the_config() {
        let cfg = SchemeConfig::parse("killi:ratio=16,ecc_ways=8,victim_priority=false").unwrap();
        let back = SchemeConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back, cfg);

        let list_json = format!(
            "{{\"schemes\": [{}, {}]}}",
            cfg.to_json(),
            SchemeConfig::new("baseline").to_json()
        );
        let list = SchemeConfig::list_from_json(&list_json).unwrap();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0], cfg);
        assert!(list[1].is_baseline());
    }

    #[test]
    fn canonicalize_unifies_every_spelling() {
        let reg = registry();
        // Shorthand, expanded JSON, reordered keys, and explicit
        // defaults are all the same scheme, so they must canonicalize
        // to byte-identical JSON (the cache-key property).
        let spellings = [
            SchemeConfig::parse("killi:ratio=16").unwrap(),
            SchemeConfig::from_json(r#"{"name": "killi", "params": {"ratio": 16}}"#).unwrap(),
            SchemeConfig::from_json(r#"{"name": "killi", "params": {"ecc_ways": 4, "ratio": 16}}"#)
                .unwrap(),
            SchemeConfig::parse("killi:check_latency=1,ratio=16,victim_priority=true").unwrap(),
            // A float spelling of an integral value coerces to U64.
            SchemeConfig::new("killi").with("ratio", ParamValue::F64(16.0)),
        ];
        let canon = reg.canonical_json(&spellings[0]).unwrap();
        for s in &spellings[1..] {
            assert_eq!(reg.canonical_json(s).unwrap(), canon, "spelling {s}");
        }
        // ...and a different ratio does not collide.
        let other = reg
            .canonical_json(&SchemeConfig::parse("killi:ratio=32").unwrap())
            .unwrap();
        assert_ne!(other, canon);
    }

    #[test]
    fn canonicalize_spells_every_declared_param() {
        let reg = registry();
        let canon = reg
            .canonicalize(&SchemeConfig::parse("killi:ratio=16").unwrap())
            .unwrap();
        let declared = &reg.descriptor("killi").unwrap().params;
        assert_eq!(canon.params.len(), declared.len());
        for (spec, (key, _)) in declared.iter().zip(canon.params.iter()) {
            assert_eq!(spec.name, key, "params must follow descriptor order");
        }
        // Canonicalizing is idempotent.
        assert_eq!(reg.canonicalize(&canon).unwrap(), canon);
    }

    #[test]
    fn canonicalize_rejects_what_resolve_rejects() {
        let reg = registry();
        assert!(matches!(
            reg.canonicalize(&SchemeConfig::new("frobnicate")),
            Err(BuildError::UnknownScheme { .. })
        ));
        assert!(matches!(
            reg.canonicalize(&SchemeConfig::new("killi").with("rato", ParamValue::U64(1))),
            Err(BuildError::UnknownParam { .. })
        ));
    }

    #[test]
    fn admissibility_rules_match_the_scheme_semantics() {
        let reg = registry();
        let rule = |s: &str| reg.admissibility(&SchemeConfig::parse(s).unwrap()).unwrap();
        assert_eq!(
            rule("baseline"),
            LineRule::Total {
                span: CellSpan::Data,
                max_faults: 0
            }
        );
        // Every runtime-policy ablation shares the steady-state rule.
        for s in [
            "killi",
            "killi:ratio=16",
            "killi-no-victim-prio",
            "killi-no-evict-train",
            "killi-no-promotion",
            "killi-invchk",
        ] {
            assert_eq!(rule(s), KILLI_RULE, "{s}");
        }
        assert_eq!(
            rule("killi-dected"),
            LineRule::Total {
                span: CellSpan::DataParity4,
                max_faults: 2
            }
        );
        assert_eq!(
            rule("killi-olsc"),
            LineRule::PerBlock {
                block_cells: 64,
                max_faults: 2
            }
        );
        assert!(matches!(
            reg.admissibility(&SchemeConfig::new("frobnicate")),
            Err(BuildError::UnknownScheme { .. })
        ));
    }

    #[test]
    fn line_rules_admit_exactly_the_tolerable_fault_populations() {
        let fault = |cell: u16| CellFault { cell, stuck: true };
        let killi = KILLI_RULE;
        assert!(killi.admits(&[]));
        assert!(killi.admits(&[fault(3)]));
        assert!(killi.admits(&[fault(512)])); // stable-mode parity cell
        assert!(!killi.admits(&[fault(3), fault(512)]));
        // Cells outside the span never count: the 16-bit training parity
        // tail and the SECDED/DECTED checkbit regions are not stored by
        // the stable-mode Killi line.
        assert!(killi.admits(&[fault(1), fault(520), fault(530), fault(545)]));

        let baseline = LineRule::Total {
            span: CellSpan::Data,
            max_faults: 0,
        };
        assert!(baseline.admits(&[fault(516)]));
        assert!(!baseline.admits(&[fault(0)]));

        let olsc = LineRule::PerBlock {
            block_cells: 64,
            max_faults: 2,
        };
        // Two faults per block are fine, even in every block...
        let spread: Vec<CellFault> = (0..8)
            .flat_map(|b| [fault(b * 64), fault(b * 64 + 1)])
            .collect();
        assert!(olsc.admits(&spread));
        // ...but a third in any one block disables the line.
        assert!(!olsc.admits(&[fault(0), fault(1), fault(63)]));
        // Non-data cells are outside every OLSC block.
        assert!(olsc.admits(&[fault(0), fault(1), fault(512), fault(513)]));
    }

    #[test]
    fn malformed_json_is_a_typed_error() {
        assert!(matches!(
            SchemeConfig::from_json("{\"params\": {}}"),
            Err(BuildError::Parse { .. })
        ));
        assert!(matches!(
            SchemeConfig::from_json("{\"name\": \"killi\", \"params\": [1]}"),
            Err(BuildError::Parse { .. })
        ));
        assert!(matches!(
            SchemeConfig::list_from_json("{\"name\": \"killi\"}"),
            Err(BuildError::Parse { .. })
        ));
    }
}

//! The Killi protection scheme (§4 of the paper), implementing the
//! simulator's [`LineProtection`] interface.
//!
//! Per physical L2 line, Killi keeps two DFH bits (in the nominal-voltage
//! tag array) and 4 parity bits (in the low-voltage data array, so they can
//! themselves be faulty). Lines in the initial (`b'01`) or one-fault
//! (`b'10`) state additionally hold SECDED checkbits and 12 more parity
//! bits in the shared [`EccCache`]. Classification happens purely from
//! parity/ECC feedback on hits and evictions — no MBIST, no oracle access
//! to the fault map (the map is touched only to *corrupt* metadata stored
//! in low-voltage cells, which is physics, not knowledge).
//!
//! Structurally, the scheme is glue over the four pipeline layers of
//! [`crate::pipeline`]: a [`SegmentedParity`] detection codec, the
//! [`EccCache`] correction store, a [`DfhClassifier`] and a
//! [`DfhPriorityPolicy`]. The glue exists because Killi dispatches on the
//! DFH state *per access* (parity-only for `b'00`, parity+SECDED for
//! `b'01`, payload-dependent for `b'10`), which the generic
//! [`crate::pipeline::ProtectionPipeline`] driver deliberately does not
//! model.

use std::sync::Arc;

use killi_ecc::bch::dected;
use killi_ecc::bits::Line512;
use killi_ecc::olsc::{OlscDecode, OlscLine};
use killi_ecc::parity::SegObservation;
use killi_ecc::secded::secded;
use killi_fault::map::{FaultMap, LineId};
use killi_obs::{Counter, MetricSet, Sink};
use killi_sim::protection::{FillOutcome, LineProtection, ReadOutcome};

use crate::classify::{classify_stable0, classify_stable1, classify_unknown, Verdict};
use crate::dfh::Dfh;
use crate::ecc_cache::{EccCache, EccCacheConfig, EccPayload};
use crate::pipeline::{
    pack_olsc, unpack_olsc, CorrectionStore, DfhClassifier, DfhPriorityPolicy, FaultClassifier,
    SegmentedParity, VictimPolicy,
};

/// Killi configuration. Defaults reproduce the paper's design; the boolean
/// switches expose the §4.4 optimizations and the §5.2/§5.6.2 extensions
/// for ablation studies.
#[derive(Debug, Clone, Copy)]
pub struct KilliConfig {
    /// ECC-cache sizing (ratio of L2 lines per entry; Table 3 uses 4 ways).
    pub ecc_cache: EccCacheConfig,
    /// SECDED/parity check latency added to every hit (Table 3: 1 cycle).
    pub check_latency: u32,
    /// §4.4: prioritize victims `b'01 > b'00 > b'10` among invalid lines.
    pub victim_priority: bool,
    /// §4.4: classify `b'01` lines when their data is evicted.
    pub eviction_training: bool,
    /// §4.4: promote ECC-cache entries alongside their L2 lines.
    pub coordinated_promotion: bool,
    /// §5.2: after training, reuse the 12 freed parity bits to upgrade the
    /// ECC-cache payload from SECDED(11b) to DEC-TED(21b), enabling lines
    /// with two LV faults.
    pub dected_upgrade: bool,
    /// §5.6.2: verify both data polarities at install time to expose masked
    /// multi-bit faults immediately (costs extra write/read cycles).
    pub inverted_write_check: bool,
    /// Cycles charged to a fill performing the inverted-write check.
    pub inverted_check_penalty: u32,
    /// §5.6.1: escalate protection for dirty (write-back) data — SECDED
    /// for dirty `b'00` lines, DEC-TED for dirty `b'10` lines — so a
    /// low-voltage write-back cache matches the failure probability of a
    /// safe-voltage SECDED cache.
    pub write_back_protection: bool,
    /// §5.5: store OLSC(8, 2) in the ECC cache instead of SECDED, keeping
    /// lines with up to 2 faults per 64-bit block (≈ 11 per line) usable —
    /// the configuration that chases MS-ECC's Vmin at a fraction of its
    /// area.
    pub olsc_mode: bool,
}

impl KilliConfig {
    /// The paper's default configuration at a given ECC-cache ratio.
    pub fn with_ratio(ratio: usize) -> Self {
        KilliConfig {
            ecc_cache: EccCacheConfig::with_ratio(ratio),
            check_latency: 1,
            victim_priority: true,
            eviction_training: true,
            coordinated_promotion: true,
            dected_upgrade: false,
            inverted_write_check: false,
            inverted_check_penalty: 4,
            write_back_protection: false,
            olsc_mode: false,
        }
    }

    /// The §5.5 low-Vmin configuration: OLSC in the ECC cache at the given
    /// ratio (the paper sizes it 1:8 at 0.600 x VDD and 1:2 at 0.575).
    pub fn with_olsc(ratio: usize) -> Self {
        KilliConfig {
            olsc_mode: true,
            ..Self::with_ratio(ratio)
        }
    }
}

/// Cold per-line flags (the hot DFH bits live packed in the classifier).
#[derive(Debug, Clone, Copy, Default)]
struct LineFlags {
    /// §5.2: this `b'10` line's ECC-cache payload is a DEC-TED code.
    dected: bool,
    /// §5.6.1: the line holds dirty data under escalated protection.
    dirty_protected: bool,
}

/// The Killi protection scheme.
pub struct KilliScheme {
    config: KilliConfig,
    map: Arc<FaultMap>,
    /// Layer 3: the 2-bit DFH state machine plus transition statistics and
    /// the scheme-op clock.
    classifier: DfhClassifier,
    /// Layer 1: the 4/16-bit segmented-parity detection codec.
    parity: SegmentedParity,
    /// Layer 2: the decoupled correction store.
    ecc: EccCache,
    /// Layer 4: victim priority plus the §5.2 protectability veto.
    policy: DfhPriorityPolicy,
    flags: Vec<LineFlags>,
    corrections: u64,
    detections: u64,
    /// Payload of the entry most recently displaced from the ECC cache;
    /// kept until the L2 invalidates that line so it can still be trained
    /// on its way out (the paper trains DFH bits on every eviction).
    pending_displaced: Option<(LineId, EccPayload)>,
    /// §5.5: the OLSC codec, present in `olsc_mode`.
    olsc: Option<OlscLine>,
}

impl KilliScheme {
    /// Builds the scheme for an L2 with `l2_lines` lines of `l2_ways`
    /// associativity over the given fault map.
    ///
    /// # Panics
    ///
    /// Panics if the fault map does not cover `l2_lines` or the ECC-cache
    /// geometry cannot be built; [`KilliScheme::try_new`] reports the same
    /// conditions as errors.
    pub fn new(config: KilliConfig, map: Arc<FaultMap>, l2_lines: usize, l2_ways: usize) -> Self {
        match Self::try_new(config, map, l2_lines, l2_ways) {
            Ok(scheme) => scheme,
            Err(message) => panic!("{message}"),
        }
    }

    /// Fallible construction: validates map coverage and ECC-cache
    /// geometry before allocating anything.
    pub fn try_new(
        config: KilliConfig,
        map: Arc<FaultMap>,
        l2_lines: usize,
        l2_ways: usize,
    ) -> Result<Self, String> {
        if map.lines() < l2_lines {
            return Err("fault map too small".to_string());
        }
        config.ecc_cache.validate(l2_lines)?;
        Ok(KilliScheme {
            config,
            classifier: DfhClassifier::new(l2_lines),
            parity: SegmentedParity::new(Arc::clone(&map), l2_lines, config.check_latency),
            ecc: EccCache::new(config.ecc_cache, l2_lines, l2_ways),
            policy: DfhPriorityPolicy {
                priority: config.victim_priority,
            },
            map,
            flags: vec![LineFlags::default(); l2_lines],
            corrections: 0,
            detections: 0,
            pending_displaced: None,
            olsc: config.olsc_mode.then(|| OlscLine::new(8, 2)),
        })
    }

    /// Current DFH state of a line (tests and reports).
    pub fn dfh(&self, line: LineId) -> Dfh {
        self.classifier.get(line)
    }

    /// Census of lines per DFH state, indexed by `Dfh::bits()`.
    pub fn dfh_census(&self) -> [usize; 4] {
        let c = self.classifier.census();
        [c[0] as usize, c[1] as usize, c[2] as usize, c[3] as usize]
    }

    /// DFH transition counts, `[from][to]` indexed by `Dfh::bits()`.
    pub fn transitions(&self) -> &[[u64; 4]; 4] {
        self.classifier.transitions()
    }

    /// The embedded ECC cache (occupancy introspection).
    pub fn ecc_cache(&self) -> &EccCache {
        &self.ecc
    }

    /// Scrubber pass (footnote 7): returns disabled lines to the initial
    /// state so ones disabled by *transient* upsets are reclaimed — lines
    /// with persistent faults simply re-classify to `b'11` on their next
    /// use. Returns the number of lines reclaimed.
    pub fn scrub_reclaim(&mut self) -> usize {
        let mut reclaimed = 0;
        for line in 0..self.flags.len() {
            if self.classifier.get(line) == Dfh::Disabled {
                self.classifier.transition(line, Dfh::Unknown);
                reclaimed += 1;
            }
        }
        reclaimed
    }

    /// Observables of a `b'01` line: 16-bit segment parity (4 LV cells + 12
    /// nominal bits from the ECC cache) plus SECDED syndrome/parity.
    fn observe_unknown(
        &self,
        line: LineId,
        stored: &Line512,
        payload: EccPayload,
    ) -> (
        SegObservation,
        killi_ecc::secded::SecdedObservation,
        killi_ecc::secded::SecdedDecode,
    ) {
        let EccPayload::Secded { code, parity_hi } = payload else {
            unreachable!("b'01 lines always hold SECDED payloads");
        };
        self.parity.observe_training(line, stored, code, parity_hi)
    }

    /// Applies a verdict reached on the read/evict path of a `b'01` or
    /// `b'10` line: updates DFH, ECC-cache residency and stable parity.
    /// Returns the bit to correct, if any, and whether data survives.
    fn apply_verdict(&mut self, line: LineId, verdict: Verdict, stored: &Line512) -> Verdict {
        match verdict {
            Verdict::SendClean { next, correct_bit } => {
                match next {
                    Dfh::Stable0 => {
                        // Entry freed; generate the 4-bit stable parity from
                        // the array content (clean by the verdict).
                        self.ecc.invalidate(line);
                        self.parity.install4(line, stored);
                        self.flags[line].dected = false;
                    }
                    Dfh::Stable1 => {
                        // Keep the entry. Stable parity reflects the
                        // *corrected* data so the fault shows as a
                        // single-segment mismatch later.
                        let mut corrected = *stored;
                        if let Some(bit) = correct_bit {
                            corrected.flip_bit(bit);
                        }
                        self.parity.install4(line, &corrected);
                        if self.config.dected_upgrade && !self.flags[line].dected {
                            // §5.2: re-encode the corrected data as DEC-TED
                            // in the freed 23 payload bits.
                            let code = dected().encode(&corrected);
                            if self.ecc.update(line, EccPayload::Dected(code)) {
                                self.flags[line].dected = true;
                            }
                        }
                    }
                    Dfh::Unknown | Dfh::Disabled => {}
                }
                self.classifier.transition(line, next);
                verdict
            }
            Verdict::ErrorMiss { next } => {
                self.detections += 1;
                self.ecc.invalidate(line);
                self.flags[line].dected = false;
                self.classifier.transition(line, next);
                verdict
            }
        }
    }

    /// §5.5 classification: decode the line against its OLSC checkbits and
    /// move the DFH accordingly. Returns the corrected data bits (empty
    /// when clean) or `None` for an uncorrectable (disable) verdict.
    fn classify_olsc(
        &mut self,
        line: LineId,
        stored: &Line512,
        words: &[u64; 4],
    ) -> Option<Vec<usize>> {
        let codec = self.olsc.as_ref().expect("olsc payload without olsc mode");
        let check = unpack_olsc(words, codec.check_bits());
        let mut work = *stored;
        match codec.decode(&mut work, &check) {
            OlscDecode::Clean => {
                self.ecc.invalidate(line);
                self.parity.install4(line, stored);
                self.classifier.transition(line, Dfh::Stable0);
                Some(Vec::new())
            }
            OlscDecode::Corrected { bits } => {
                self.parity.install4(line, &work);
                self.classifier.transition(line, Dfh::Stable1);
                Some(bits)
            }
            OlscDecode::Detected => {
                self.detections += 1;
                self.ecc.invalidate(line);
                self.classifier.transition(line, Dfh::Disabled);
                None
            }
        }
    }

    /// Install-time classification for the §5.6.2 inverted-write check.
    ///
    /// The flow writes the original data, reads it back and compares it
    /// against the (still-buffered) write data, then repeats with the
    /// inverted polarity. A stuck-at cell is masked in exactly one
    /// polarity, so the union of the two comparisons exposes *every*
    /// faulty data cell — exact classification at install time, at the
    /// cost of an extra write+read pair and one polarity bit.
    fn inverted_write_classify(&mut self, line: LineId, data: &Line512) -> Dfh {
        let mut readback = *data;
        self.map.corrupt_data(line, &mut readback);
        let inverted = data.inverted();
        let mut readback_inv = inverted;
        self.map.corrupt_data(line, &mut readback_inv);
        // Each fault shows in exactly one polarity, so the diffs are
        // disjoint and OR equals the full fault set.
        let fault_bits = (readback ^ *data) | (readback_inv ^ inverted);
        let next = match fault_bits.count_ones() {
            0 => Dfh::Stable0,
            1 => Dfh::Stable1,
            _ => Dfh::Disabled,
        };
        self.classifier.transition(line, next);
        next
    }
}

impl LineProtection for KilliScheme {
    fn name(&self) -> &str {
        "killi"
    }

    fn reset(&mut self) {
        // Voltage change / reboot: relearn everything (§2.4).
        self.classifier.reset();
        self.parity.reset();
        for f in &mut self.flags {
            *f = LineFlags::default();
        }
        self.ecc.clear();
    }

    fn victim_class(&self, line: LineId) -> Option<u8> {
        // The classifier supplies the raw DFH class; the policy layer adds
        // the §5.2 protectability veto (a `b'10` line can only hold data
        // while its ECC-cache set has room for its checkbits) and the §4.4
        // priority/ablation decision.
        let raw = self.classifier.get(line).victim_class();
        self.policy.victim_class(line, raw, &self.ecc)
    }

    fn on_fill(&mut self, line: LineId, data: &Line512) -> FillOutcome {
        self.classifier.tick();
        let mut outcome = FillOutcome::default();
        self.flags[line].dirty_protected = false; // a fill installs clean data
        let mut dfh = self.classifier.get(line);
        // The L2 never picks a disabled victim (victim_class is None), but
        // direct callers may still probe: the Disabled arm below rejects
        // the fill gracefully rather than asserting.

        if dfh == Dfh::Unknown && self.config.inverted_write_check {
            outcome.extra_cycles += self.config.inverted_check_penalty;
            dfh = self.inverted_write_classify(line, data);
            if dfh == Dfh::Disabled {
                self.detections += 1;
                outcome.accepted = false;
                return outcome;
            }
        }

        match dfh {
            Dfh::Stable0 => {
                self.parity.install4(line, data);
            }
            Dfh::Unknown => {
                let p16 = self.parity.install16(line, data);
                let payload = if let Some(codec) = &self.olsc {
                    EccPayload::Olsc(pack_olsc(&codec.encode(data)))
                } else {
                    EccPayload::Secded {
                        code: secded().encode(data),
                        parity_hi: p16 >> 4,
                    }
                };
                if let Some((displaced, old_payload)) = self.ecc.insert(line, payload) {
                    self.pending_displaced = Some((displaced, old_payload));
                    outcome.invalidate.push(displaced);
                }
            }
            Dfh::Stable1 => {
                self.parity.install4(line, data);
                let payload = if let Some(codec) = &self.olsc {
                    EccPayload::Olsc(pack_olsc(&codec.encode(data)))
                } else if self.config.dected_upgrade {
                    self.flags[line].dected = true;
                    EccPayload::Dected(dected().encode(data))
                } else {
                    EccPayload::Secded {
                        code: secded().encode(data),
                        parity_hi: 0,
                    }
                };
                if let Some((displaced, old_payload)) = self.ecc.insert(line, payload) {
                    self.pending_displaced = Some((displaced, old_payload));
                    outcome.invalidate.push(displaced);
                }
            }
            Dfh::Disabled => {
                outcome.accepted = false;
            }
        }
        outcome
    }

    fn on_write(&mut self, line: LineId, data: &Line512) -> FillOutcome {
        if !self.config.write_back_protection {
            return self.on_fill(line, data);
        }
        // §5.6.1: dirty data must survive without a memory copy to refetch,
        // so every dirty line gets checkbits in the ECC cache — SECDED for
        // (otherwise parity-only) b'00 lines, DEC-TED for b'10 lines.
        let mut outcome = FillOutcome::default();
        match self.classifier.get(line) {
            Dfh::Unknown => {
                // Training protection (16-bit parity + SECDED) already
                // meets the SECDED-at-safe-voltage bar.
                outcome = self.on_fill(line, data);
                self.flags[line].dirty_protected = outcome.accepted;
            }
            Dfh::Stable0 => {
                self.parity.install4(line, data);
                let payload = EccPayload::Secded {
                    code: secded().encode(data),
                    parity_hi: 0,
                };
                if let Some((displaced, old_payload)) = self.ecc.insert(line, payload) {
                    self.pending_displaced = Some((displaced, old_payload));
                    outcome.invalidate.push(displaced);
                }
                self.flags[line].dirty_protected = true;
            }
            Dfh::Stable1 => {
                self.parity.install4(line, data);
                let payload = EccPayload::Dected(dected().encode(data));
                if let Some((displaced, old_payload)) = self.ecc.insert(line, payload) {
                    self.pending_displaced = Some((displaced, old_payload));
                    outcome.invalidate.push(displaced);
                }
                self.flags[line].dected = true;
                self.flags[line].dirty_protected = true;
            }
            Dfh::Disabled => {
                outcome.accepted = false;
            }
        }
        outcome
    }

    fn on_read_hit(&mut self, line: LineId, stored: &mut Line512) -> ReadOutcome {
        self.classifier.tick();
        if self.flags[line].dirty_protected && self.classifier.get(line) == Dfh::Stable0 {
            // §5.6.1 dirty b'00 line: SECDED checkbits back the parity.
            if let Some(EccPayload::Secded { code, .. }) = self.ecc.lookup(line) {
                return match secded().decode(stored, code) {
                    killi_ecc::secded::SecdedDecode::Clean
                    | killi_ecc::secded::SecdedDecode::CorrectedCheck => ReadOutcome::Clean {
                        extra_cycles: 0,
                        corrected: false,
                    },
                    killi_ecc::secded::SecdedDecode::CorrectedData { bit } => {
                        stored.flip_bit(bit);
                        self.corrections += 1;
                        ReadOutcome::Clean {
                            extra_cycles: 0,
                            corrected: true,
                        }
                    }
                    _ => {
                        // Uncorrectable on dirty data: the L2 records the
                        // loss; retrain this line from scratch.
                        self.detections += 1;
                        self.ecc.invalidate(line);
                        self.flags[line].dirty_protected = false;
                        self.classifier.transition(line, Dfh::Unknown);
                        ReadOutcome::ErrorMiss { extra_cycles: 0 }
                    }
                };
            }
            debug_assert!(false, "dirty-protected line without ECC entry");
        }
        match self.classifier.get(line) {
            Dfh::Stable0 => {
                let obs = self.parity.observe_stable(line, stored);
                match classify_stable0(obs) {
                    Verdict::SendClean { .. } => ReadOutcome::Clean {
                        extra_cycles: 0,
                        corrected: false,
                    },
                    Verdict::ErrorMiss { next } => {
                        self.detections += 1;
                        self.classifier.transition(line, next);
                        ReadOutcome::ErrorMiss { extra_cycles: 0 }
                    }
                }
            }
            Dfh::Unknown => {
                let Some(payload) = self.ecc.lookup(line) else {
                    // Invariant: valid b'01 lines always have an entry. If
                    // it is ever missing, refetch conservatively.
                    debug_assert!(false, "b'01 line without ECC entry");
                    return ReadOutcome::ErrorMiss { extra_cycles: 0 };
                };
                if let EccPayload::Olsc(words) = payload {
                    return match self.classify_olsc(line, stored, &words) {
                        Some(bits) => {
                            let corrected = !bits.is_empty();
                            for bit in bits {
                                stored.flip_bit(bit);
                            }
                            if corrected {
                                self.corrections += 1;
                            }
                            ReadOutcome::Clean {
                                extra_cycles: 0,
                                corrected,
                            }
                        }
                        None => ReadOutcome::ErrorMiss { extra_cycles: 0 },
                    };
                }
                let (seg, ecc, dec) = self.observe_unknown(line, stored, payload);
                let mut verdict = classify_unknown(seg, ecc, dec);
                // §5.2: with the DEC-TED upgrade, a line whose training
                // evidence points at exactly two errors (even-count ECC
                // signature, at most two noisy segments) is re-enabled as
                // `b'10` and refilled under a 2-error-correcting code
                // instead of being disabled.
                if self.config.dected_upgrade
                    && verdict
                        == (Verdict::ErrorMiss {
                            next: Dfh::Disabled,
                        })
                    && !ecc.syndrome_zero()
                    && !ecc.parity_mismatch
                    && !matches!(seg, SegObservation::MultiSegment(n) if n > 2)
                {
                    verdict = Verdict::ErrorMiss { next: Dfh::Stable1 };
                }
                match self.apply_verdict(line, verdict, stored) {
                    Verdict::SendClean { correct_bit, .. } => {
                        let corrected = correct_bit.is_some();
                        if let Some(bit) = correct_bit {
                            stored.flip_bit(bit);
                            self.corrections += 1;
                        }
                        ReadOutcome::Clean {
                            extra_cycles: 0,
                            corrected,
                        }
                    }
                    Verdict::ErrorMiss { .. } => ReadOutcome::ErrorMiss { extra_cycles: 0 },
                }
            }
            Dfh::Stable1 => {
                let Some(payload) = self.ecc.lookup(line) else {
                    debug_assert!(false, "b'10 line without ECC entry");
                    return ReadOutcome::ErrorMiss { extra_cycles: 0 };
                };
                match payload {
                    EccPayload::Olsc(words) => match self.classify_olsc(line, stored, &words) {
                        Some(bits) => {
                            let corrected = !bits.is_empty();
                            for bit in bits {
                                stored.flip_bit(bit);
                            }
                            if corrected {
                                self.corrections += 1;
                            }
                            ReadOutcome::Clean {
                                extra_cycles: 0,
                                corrected,
                            }
                        }
                        None => ReadOutcome::ErrorMiss { extra_cycles: 0 },
                    },
                    EccPayload::Dected(code) => {
                        // §5.2 upgraded line: DEC-TED handles up to two
                        // errors without parity help.
                        let d = dected().decode(stored, code);
                        match d {
                            killi_ecc::bch::DectedDecode::Clean => ReadOutcome::Clean {
                                extra_cycles: 0,
                                corrected: false,
                            },
                            killi_ecc::bch::DectedDecode::Corrected { bits } => {
                                let mut any = false;
                                for bit in bits.into_iter().flatten() {
                                    stored.flip_bit(bit);
                                    any = true;
                                }
                                if any {
                                    self.corrections += 1;
                                }
                                ReadOutcome::Clean {
                                    extra_cycles: 0,
                                    corrected: any,
                                }
                            }
                            killi_ecc::bch::DectedDecode::Detected => {
                                self.detections += 1;
                                self.ecc.invalidate(line);
                                self.flags[line].dected = false;
                                self.classifier.transition(line, Dfh::Disabled);
                                ReadOutcome::ErrorMiss { extra_cycles: 0 }
                            }
                        }
                    }
                    EccPayload::Secded { code, .. } => {
                        let seg = self.parity.observe_stable(line, stored);
                        let ecc = secded().observe(stored, code);
                        let dec = secded().interpret(ecc);
                        let verdict = classify_stable1(seg, ecc, dec);
                        match self.apply_verdict(line, verdict, stored) {
                            Verdict::SendClean { correct_bit, .. } => {
                                let corrected = correct_bit.is_some();
                                if let Some(bit) = correct_bit {
                                    stored.flip_bit(bit);
                                    self.corrections += 1;
                                }
                                ReadOutcome::Clean {
                                    extra_cycles: 0,
                                    corrected,
                                }
                            }
                            Verdict::ErrorMiss { .. } => ReadOutcome::ErrorMiss { extra_cycles: 0 },
                        }
                    }
                }
            }
            Dfh::Disabled => {
                debug_assert!(false, "read hit on a disabled line");
                ReadOutcome::ErrorMiss { extra_cycles: 0 }
            }
        }
    }

    fn on_displaced(&mut self, line: LineId, stored: &Line512) -> bool {
        // Whatever happens, the displaced line loses its escalated dirty
        // protection (the L2 writes dirty data back before dropping it).
        self.flags[line].dirty_protected = false;
        let Some((pending_line, payload)) = self.pending_displaced.take() else {
            return false;
        };
        if pending_line != line {
            self.pending_displaced = Some((pending_line, payload));
            return false;
        }
        match (self.classifier.get(line), payload) {
            (Dfh::Unknown, EccPayload::Olsc(words)) => {
                let _ = self.classify_olsc(line, stored, &words);
                self.classifier.get(line) == Dfh::Stable0
            }
            (Dfh::Unknown, payload) => {
                // Classify the line with the displaced metadata while it is
                // still on the wire. A verified fault-free line switches to
                // 4-bit parity and keeps its data; anything else loses it.
                let (seg, ecc, dec) = self.observe_unknown(line, stored, payload);
                let verdict = classify_unknown(seg, ecc, dec);
                self.apply_verdict(line, verdict, stored);
                self.classifier.get(line) == Dfh::Stable0
            }
            // A `b'10` line cannot survive without its checkbits.
            _ => false,
        }
    }

    fn on_evict(&mut self, line: LineId, stored: &Line512) {
        self.classifier.tick();
        match self.classifier.get(line) {
            Dfh::Unknown => {
                if self.config.eviction_training {
                    // The entry may just have been displaced from the ECC
                    // cache by the fill that is evicting this line; its
                    // payload is still on the wire and usable for training.
                    let payload =
                        self.ecc
                            .lookup(line)
                            .or_else(|| match self.pending_displaced.take() {
                                Some((l, p)) if l == line => Some(p),
                                other => {
                                    self.pending_displaced = other;
                                    None
                                }
                            });
                    match payload {
                        Some(EccPayload::Olsc(words)) => {
                            let _ = self.classify_olsc(line, stored, &words);
                        }
                        Some(payload) => {
                            // §4.4: read the evicted data, compare parity
                            // and checkbits, update the DFH bits.
                            let (seg, ecc, dec) = self.observe_unknown(line, stored, payload);
                            let verdict = classify_unknown(seg, ecc, dec);
                            self.apply_verdict(line, verdict, stored);
                        }
                        None => {}
                    }
                }
                // The data is gone; its protection entry goes too.
                self.ecc.invalidate(line);
            }
            Dfh::Stable1 => {
                self.ecc.invalidate(line);
            }
            Dfh::Stable0 => {
                if self.flags[line].dirty_protected {
                    self.ecc.invalidate(line);
                }
            }
            Dfh::Disabled => {}
        }
        self.flags[line].dirty_protected = false;
    }

    fn on_promote(&mut self, line: LineId) {
        if self.config.coordinated_promotion && self.classifier.get(line).needs_ecc_entry() {
            self.ecc.promote(line);
        }
    }

    fn hit_latency_extra(&self) -> u32 {
        self.config.check_latency
    }

    fn attach_sink(&mut self, sink: Sink) {
        self.ecc.attach_sink(sink.clone());
        self.parity.attach_sink(sink.clone());
        self.classifier.attach_sink(sink);
    }

    fn metrics(&self) -> MetricSet {
        let mut m = MetricSet::new();
        m.set(Counter::DisabledLines, self.classifier.disabled_lines());
        m.set(Counter::Corrections, self.corrections);
        m.set(Counter::Detections, self.detections);
        self.classifier.fill_metrics(&mut m);
        CorrectionStore::fill_metrics(&self.ecc, &mut m);
        m
    }
}

impl std::fmt::Debug for KilliScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KilliScheme")
            .field("config", &self.config)
            .field("lines", &self.flags.len())
            .field("census", &self.dfh_census())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use killi_fault::map::CellFault;
    use killi_sim::protection::ReadOutcome;

    const LINES: usize = 16;
    const WAYS: usize = 4;

    fn fault(cell: u16, stuck: bool) -> CellFault {
        CellFault { cell, stuck }
    }

    /// A 16-line scheme with an explicit fault population and a 4-entry
    /// (single-set) ECC cache.
    fn scheme(faults: Vec<(usize, Vec<CellFault>)>, config: KilliConfig) -> KilliScheme {
        let mut per_line = vec![Vec::new(); LINES];
        for (line, fs) in faults {
            per_line[line] = fs;
        }
        let map = Arc::new(FaultMap::from_faults(per_line));
        KilliScheme::new(config, map, LINES, WAYS)
    }

    fn config() -> KilliConfig {
        KilliConfig {
            ecc_cache: EccCacheConfig { ratio: 4, ways: 4 }, // 4 entries, 1 set
            ..KilliConfig::with_ratio(4)
        }
    }

    /// Array content after writing `data` into `line`.
    fn stored(s: &KilliScheme, line: LineId, data: &Line512) -> Line512 {
        let mut v = *data;
        s.map.corrupt_data(line, &mut v);
        v
    }

    #[test]
    fn clean_line_classifies_stable0_and_frees_entry() {
        let mut s = scheme(vec![], config());
        let data = Line512::from_seed(1);
        assert_eq!(s.dfh(0), Dfh::Unknown);
        let fill = s.on_fill(0, &data);
        assert!(fill.accepted && fill.invalidate.is_empty());
        assert_eq!(s.ecc_cache().occupancy(), 1);
        let mut arr = stored(&s, 0, &data);
        match s.on_read_hit(0, &mut arr) {
            ReadOutcome::Clean { corrected, .. } => assert!(!corrected),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.dfh(0), Dfh::Stable0);
        assert_eq!(s.ecc_cache().occupancy(), 0, "entry freed on b'00");
        assert_eq!(arr, data);
    }

    #[test]
    fn single_fault_line_corrected_and_stable1() {
        let mut s = scheme(vec![(0, vec![fault(10, true)])], config());
        let data = Line512::zero(); // bit 10 will be stuck high: unmasked
        s.on_fill(0, &data);
        let mut arr = stored(&s, 0, &data);
        assert!(arr.bit(10), "fault must corrupt the array");
        match s.on_read_hit(0, &mut arr) {
            ReadOutcome::Clean { corrected, .. } => assert!(corrected),
            other => panic!("{other:?}"),
        }
        assert_eq!(arr, data, "delivered data corrected");
        assert_eq!(s.dfh(0), Dfh::Stable1);
        assert_eq!(s.ecc_cache().occupancy(), 1, "b'10 keeps its entry");
        assert_eq!(s.protection_stats().corrections, 1);

        // Subsequent reads keep correcting and stay in b'10.
        let mut arr2 = stored(&s, 0, &data);
        match s.on_read_hit(0, &mut arr2) {
            ReadOutcome::Clean { corrected, .. } => assert!(corrected),
            other => panic!("{other:?}"),
        }
        assert_eq!(arr2, data);
        assert_eq!(s.dfh(0), Dfh::Stable1);
    }

    #[test]
    fn double_fault_line_disabled() {
        // Faults in different segments (3 % 16 != 40 % 16).
        let mut s = scheme(vec![(0, vec![fault(3, true), fault(40, true)])], config());
        let data = Line512::zero();
        s.on_fill(0, &data);
        let mut arr = stored(&s, 0, &data);
        match s.on_read_hit(0, &mut arr) {
            ReadOutcome::ErrorMiss { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(s.dfh(0), Dfh::Disabled);
        assert_eq!(s.victim_class(0), None, "disabled lines never allocated");
        assert_eq!(s.protection_stats().disabled_lines, 1);
        assert_eq!(s.ecc_cache().occupancy(), 0);
    }

    #[test]
    fn masked_fault_oscillates_and_recovers() {
        // Stuck-at-1 at bit 10; the first write has bit 10 = 1 => masked.
        let mut s = scheme(vec![(0, vec![fault(10, true)])], config());
        let mut masked = Line512::zero();
        masked.set_bit(10, true);
        s.on_fill(0, &masked);
        let mut arr = stored(&s, 0, &masked);
        assert!(matches!(
            s.on_read_hit(0, &mut arr),
            ReadOutcome::Clean { .. }
        ));
        assert_eq!(
            s.dfh(0),
            Dfh::Stable0,
            "masked fault misclassified (by design)"
        );

        // The line is rewritten with data that unmasks the fault.
        s.on_evict(0, &arr);
        let unmasking = Line512::zero();
        s.on_fill(0, &unmasking);
        let mut arr2 = stored(&s, 0, &unmasking);
        match s.on_read_hit(0, &mut arr2) {
            ReadOutcome::ErrorMiss { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(
            s.dfh(0),
            Dfh::Unknown,
            "b'00 -> b'01 on 1-bit error (Table 2 row 2)"
        );

        // Refetch: the line retrains to b'10 and corrects from then on.
        s.on_fill(0, &unmasking);
        let mut arr3 = stored(&s, 0, &unmasking);
        match s.on_read_hit(0, &mut arr3) {
            ReadOutcome::Clean { corrected, .. } => assert!(corrected),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.dfh(0), Dfh::Stable1);
        assert_eq!(arr3, unmasking);
    }

    #[test]
    fn eviction_training_classifies_without_reads() {
        let mut s = scheme(vec![(2, vec![fault(7, false)])], config());
        let data = Line512::from_seed(3); // pseudo-random: bit 7 likely varies
                                          // Line 0: clean; line 2: one fault.
        s.on_fill(0, &data);
        s.on_evict(0, &stored(&s, 0, &data));
        assert_eq!(s.dfh(0), Dfh::Stable0, "trained on eviction");

        let mut unmasking = Line512::zero();
        unmasking.set_bit(7, true); // stuck-at-0 cell written with 1
        s.on_fill(2, &unmasking);
        s.on_evict(2, &stored(&s, 2, &unmasking));
        assert_eq!(s.dfh(2), Dfh::Stable1, "fault learned on eviction");
        assert_eq!(s.ecc_cache().occupancy(), 0, "entries freed with the data");
    }

    #[test]
    fn eviction_training_can_be_disabled() {
        let mut s = scheme(
            vec![],
            KilliConfig {
                eviction_training: false,
                ..config()
            },
        );
        let data = Line512::from_seed(4);
        s.on_fill(0, &data);
        s.on_evict(0, &stored(&s, 0, &data));
        assert_eq!(s.dfh(0), Dfh::Unknown, "no training on eviction");
    }

    #[test]
    fn ecc_contention_invalidates_displaced_lines() {
        // 4-entry, single-set ECC cache: the 5th b'01 fill displaces the
        // least-recently-used entry, whose L2 line must be invalidated.
        let mut s = scheme(vec![], config());
        let data = Line512::from_seed(5);
        for line in 0..4 {
            assert!(s.on_fill(line, &data).invalidate.is_empty());
        }
        let fill = s.on_fill(4, &data);
        assert_eq!(fill.invalidate, vec![0], "LRU-protected line displaced");
        assert_eq!(s.protection_stats().ecc_cache_evictions, 1);
    }

    #[test]
    fn promotion_shields_entries_from_displacement() {
        let mut s = scheme(vec![], config());
        let data = Line512::from_seed(6);
        for line in 0..4 {
            s.on_fill(line, &data);
        }
        s.on_promote(0); // coordinated promotion makes line 0 MRU
        let fill = s.on_fill(4, &data);
        assert_eq!(fill.invalidate, vec![1], "line 0 protected by promotion");
    }

    #[test]
    fn victim_priority_ordering_and_ablation() {
        let mut s = scheme(vec![(1, vec![fault(9, true)])], config());
        let data = Line512::zero();
        // Classify line 0 -> b'00 and line 1 -> b'10; line 2 stays b'01.
        s.on_fill(0, &data);
        let mut a = stored(&s, 0, &data);
        s.on_read_hit(0, &mut a);
        s.on_fill(1, &data);
        let mut b = stored(&s, 1, &data);
        s.on_read_hit(1, &mut b);
        assert_eq!(s.dfh(0), Dfh::Stable0);
        assert_eq!(s.dfh(1), Dfh::Stable1);
        assert!(s.victim_class(2) < s.victim_class(0));
        assert!(s.victim_class(0) < s.victim_class(1));

        let s2 = scheme(
            vec![],
            KilliConfig {
                victim_priority: false,
                ..config()
            },
        );
        assert_eq!(s2.victim_class(0), Some(0));
        assert_eq!(s2.victim_class(1), Some(0));
    }

    #[test]
    fn reset_relearns_everything() {
        let mut s = scheme(vec![(0, vec![fault(3, true), fault(40, true)])], config());
        let data = Line512::zero();
        s.on_fill(0, &data);
        let mut arr = stored(&s, 0, &data);
        s.on_read_hit(0, &mut arr);
        assert_eq!(s.dfh(0), Dfh::Disabled);
        s.reset();
        assert_eq!(s.dfh(0), Dfh::Unknown, "voltage change clears DFH");
        assert_eq!(s.ecc_cache().occupancy(), 0);
    }

    #[test]
    fn try_new_reports_geometry_errors_instead_of_panicking() {
        let map = Arc::new(FaultMap::fault_free(LINES));
        // Fault map smaller than the L2.
        let err = KilliScheme::try_new(config(), Arc::clone(&map), LINES * 2, WAYS).unwrap_err();
        assert_eq!(err, "fault map too small");
        // ECC cache smaller than one set: 16 lines / ratio 16 = 1 entry.
        let bad = KilliConfig {
            ecc_cache: EccCacheConfig { ratio: 16, ways: 4 },
            ..KilliConfig::with_ratio(16)
        };
        let err = KilliScheme::try_new(bad, map, LINES, WAYS).unwrap_err();
        assert_eq!(err, "ECC cache smaller than one set");
    }

    #[test]
    fn inverted_write_check_rejects_masked_multibit_fault() {
        // Two stuck-at-0 faults in the same 16-bit-interleaved segment
        // (cells 5 and 21): an all-zero write masks both, and a later
        // unmasking write would corrupt data undetectably under 4-bit
        // parity. The §5.6.2 check must catch this at install time.
        let faults = vec![(0, vec![fault(5, false), fault(21, false)])];
        let mut plain = scheme(faults.clone(), config());
        let zero = Line512::zero();
        plain.on_fill(0, &zero);
        let mut arr = stored(&plain, 0, &zero);
        plain.on_read_hit(0, &mut arr);
        assert_eq!(plain.dfh(0), Dfh::Stable0, "plain Killi is fooled");

        let mut checked = scheme(
            faults,
            KilliConfig {
                inverted_write_check: true,
                ..config()
            },
        );
        let fill = checked.on_fill(0, &zero);
        assert!(!fill.accepted, "inverted check rejects the fill");
        assert_eq!(checked.dfh(0), Dfh::Disabled);
    }

    #[test]
    fn inverted_write_check_classifies_single_fault_at_fill() {
        let mut s = scheme(
            vec![(0, vec![fault(10, true)])],
            KilliConfig {
                inverted_write_check: true,
                ..config()
            },
        );
        let mut masked = Line512::zero();
        masked.set_bit(10, true); // masked in the written polarity
        let fill = s.on_fill(0, &masked);
        assert!(fill.accepted);
        assert_eq!(
            s.dfh(0),
            Dfh::Stable1,
            "inverted polarity exposed the fault"
        );
    }

    #[test]
    fn dected_upgrade_enables_two_fault_lines() {
        let mut s = scheme(
            vec![(0, vec![fault(3, true), fault(40, true)])],
            KilliConfig {
                dected_upgrade: true,
                ..config()
            },
        );
        let data = Line512::zero();
        s.on_fill(0, &data);
        let mut arr = stored(&s, 0, &data);
        match s.on_read_hit(0, &mut arr) {
            ReadOutcome::ErrorMiss { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(s.dfh(0), Dfh::Stable1, "two-fault line re-enabled (§5.2)");

        // Refill: the line now carries a DEC-TED payload and corrects both.
        s.on_fill(0, &data);
        let mut arr2 = stored(&s, 0, &data);
        match s.on_read_hit(0, &mut arr2) {
            ReadOutcome::Clean { corrected, .. } => assert!(corrected),
            other => panic!("{other:?}"),
        }
        assert_eq!(arr2, data, "both faults corrected by DEC-TED");
        assert_eq!(s.dfh(0), Dfh::Stable1);
    }

    #[test]
    fn dected_upgrade_still_disables_three_fault_lines() {
        let mut s = scheme(
            vec![(0, vec![fault(3, true), fault(40, true), fault(77, true)])],
            KilliConfig {
                dected_upgrade: true,
                ..config()
            },
        );
        let data = Line512::zero();
        s.on_fill(0, &data);
        let mut arr = stored(&s, 0, &data);
        assert!(matches!(
            s.on_read_hit(0, &mut arr),
            ReadOutcome::ErrorMiss { .. }
        ));
        assert_eq!(s.dfh(0), Dfh::Disabled);
    }

    #[test]
    fn stable1_line_with_extra_error_disables() {
        let mut s = scheme(vec![(0, vec![fault(10, true)])], config());
        let data = Line512::zero();
        s.on_fill(0, &data);
        let mut arr = stored(&s, 0, &data);
        s.on_read_hit(0, &mut arr); // -> b'10
        assert_eq!(s.dfh(0), Dfh::Stable1);

        // A soft error strikes a second bit in the array.
        let mut arr2 = stored(&s, 0, &data);
        arr2.flip_bit(200);
        match s.on_read_hit(0, &mut arr2) {
            ReadOutcome::ErrorMiss { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(s.dfh(0), Dfh::Disabled);
    }

    #[test]
    fn stable1_recovers_to_stable0_when_fault_vanishes() {
        // Table 2 row 9: a transient that was classified as an LV fault
        // disappears after the data is overwritten.
        let mut s = scheme(vec![(0, vec![fault(10, true)])], config());
        let data = Line512::zero();
        s.on_fill(0, &data);
        let mut arr = stored(&s, 0, &data);
        s.on_read_hit(0, &mut arr);
        assert_eq!(s.dfh(0), Dfh::Stable1);

        // New data masks the stuck-at cell: no observable fault remains.
        s.on_evict(0, &arr);
        let mut masking = Line512::zero();
        masking.set_bit(10, true);
        s.on_fill(0, &masking);
        let mut arr2 = stored(&s, 0, &masking);
        match s.on_read_hit(0, &mut arr2) {
            ReadOutcome::Clean { corrected, .. } => assert!(!corrected),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.dfh(0), Dfh::Stable0, "b'10 -> b'00 (Table 2 row 9)");
        assert_eq!(s.ecc_cache().occupancy(), 0);
    }

    #[test]
    fn transition_counters_track_training() {
        let mut s = scheme(vec![(1, vec![fault(9, true)])], config());
        let data = Line512::zero();
        s.on_fill(0, &data);
        let mut a = stored(&s, 0, &data);
        s.on_read_hit(0, &mut a);
        s.on_fill(1, &data);
        let mut b = stored(&s, 1, &data);
        s.on_read_hit(1, &mut b);
        let t = s.transitions();
        assert_eq!(
            t[Dfh::Unknown.bits() as usize][Dfh::Stable0.bits() as usize],
            1
        );
        assert_eq!(
            t[Dfh::Unknown.bits() as usize][Dfh::Stable1.bits() as usize],
            1
        );
        let census = s.dfh_census();
        assert_eq!(census[Dfh::Stable0.bits() as usize], 1);
        assert_eq!(census[Dfh::Stable1.bits() as usize], 1);
        assert_eq!(census[Dfh::Unknown.bits() as usize], LINES - 2);
    }
}

#[cfg(test)]
mod olsc_tests {
    use super::*;
    use killi_fault::map::CellFault;
    use killi_sim::protection::ReadOutcome;

    fn fault(cell: u16) -> CellFault {
        CellFault { cell, stuck: true }
    }

    fn olsc_scheme(faults: Vec<CellFault>) -> KilliScheme {
        let mut per_line = vec![Vec::new(); 16];
        per_line[0] = faults;
        let map = Arc::new(FaultMap::from_faults(per_line));
        KilliScheme::new(
            KilliConfig {
                ecc_cache: EccCacheConfig { ratio: 4, ways: 4 },
                ..KilliConfig::with_olsc(4)
            },
            map,
            16,
            4,
        )
    }

    #[test]
    fn multi_fault_line_stays_usable_under_olsc() {
        // Five spread faults (<= 2 per 64-bit block): plain Killi would
        // disable this line; §5.5 OLSC keeps it correcting.
        let mut s = olsc_scheme(vec![
            fault(3),
            fault(70),
            fault(140),
            fault(260),
            fault(400),
        ]);
        let data = Line512::zero();
        s.on_fill(0, &data);
        let mut arr = data;
        s.map.corrupt_data(0, &mut arr);
        assert_eq!(arr.count_ones(), 5);
        match s.on_read_hit(0, &mut arr) {
            ReadOutcome::Clean { corrected, .. } => assert!(corrected),
            other => panic!("{other:?}"),
        }
        assert_eq!(arr, data, "all five faults corrected");
        assert_eq!(s.dfh(0), Dfh::Stable1);

        // And again on the next access.
        let mut arr2 = data;
        s.map.corrupt_data(0, &mut arr2);
        assert!(matches!(
            s.on_read_hit(0, &mut arr2),
            ReadOutcome::Clean { .. }
        ));
        assert_eq!(arr2, data);
    }

    #[test]
    fn overloaded_block_still_disabled_under_olsc() {
        // Three faults inside one 64-bit block exceed OLSC(8, 2).
        let mut s = olsc_scheme(vec![fault(1), fault(9), fault(17)]);
        let data = Line512::zero();
        s.on_fill(0, &data);
        let mut arr = data;
        s.map.corrupt_data(0, &mut arr);
        match s.on_read_hit(0, &mut arr) {
            ReadOutcome::ErrorMiss { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(s.dfh(0), Dfh::Disabled);
    }

    #[test]
    fn clean_line_frees_entry_under_olsc() {
        let mut s = olsc_scheme(vec![]);
        let data = Line512::from_seed(5);
        s.on_fill(0, &data);
        assert_eq!(s.ecc_cache().occupancy(), 1);
        let mut arr = data;
        s.on_read_hit(0, &mut arr);
        assert_eq!(s.dfh(0), Dfh::Stable0);
        assert_eq!(s.ecc_cache().occupancy(), 0);
    }

    #[test]
    fn olsc_payload_roundtrip() {
        let codec = OlscLine::new(8, 2);
        let data = Line512::from_seed(9);
        let bits = codec.encode(&data);
        let packed = pack_olsc(&bits);
        assert_eq!(unpack_olsc(&packed, bits.len()), bits);
    }
}

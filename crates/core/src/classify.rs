//! The Table 2 state-transition logic as a pure function.
//!
//! Killi's cache controller observes three signals on every checked access:
//! segmented parity (match / one segment / multiple segments), the SECDED
//! syndrome (zero / non-zero) and the SECDED global parity (match /
//! mismatch), and derives the next DFH state plus an action. Keeping this a
//! pure function of the observables makes the paper's table directly
//! testable row by row.
//!
//! Table 2 does not enumerate every observable combination; the unlisted
//! ones (reachable only through faults in the parity storage cells
//! themselves, or odd aliasing) are resolved conservatively and documented
//! inline.

use killi_ecc::parity::SegObservation;
use killi_ecc::secded::{SecdedDecode, SecdedObservation};

use crate::dfh::Dfh;

/// What the controller does after classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver the line (correcting `correct_bit` first if set).
    SendClean {
        /// Next DFH state.
        next: Dfh,
        /// Data bit to flip before delivery (a SECDED single-bit
        /// correction).
        correct_bit: Option<usize>,
    },
    /// Signal an error-induced cache miss: invalidate the line, refetch
    /// from memory (write-through makes this always safe).
    ErrorMiss {
        /// Next DFH state.
        next: Dfh,
    },
}

impl Verdict {
    /// The next DFH state of either verdict.
    pub fn next_dfh(&self) -> Dfh {
        match *self {
            Verdict::SendClean { next, .. } | Verdict::ErrorMiss { next } => next,
        }
    }
}

/// Classifies a read of a `b'00` (stable fault-free) line, which is
/// protected by 4-bit parity only (Table 2 rows 1-3).
pub fn classify_stable0(seg: SegObservation) -> Verdict {
    match seg {
        // "No error" — the overwhelmingly common case.
        SegObservation::Match => Verdict::SendClean {
            next: Dfh::Stable0,
            correct_bit: None,
        },
        // "1-bit error discovered after training; initial classification
        // incorrect" — back to the initial state and relearn.
        SegObservation::OneSegment(_) => Verdict::ErrorMiss { next: Dfh::Unknown },
        // "Multi-bit error discovered after training" — disable.
        SegObservation::MultiSegment(_) => Verdict::ErrorMiss {
            next: Dfh::Disabled,
        },
    }
}

/// Classifies a read of a `b'01` (initial/unknown) line, protected by
/// 16-bit parity plus SECDED (Table 2 rows 4-8).
pub fn classify_unknown(
    seg: SegObservation,
    ecc: SecdedObservation,
    decode: SecdedDecode,
) -> Verdict {
    let syn_ok = ecc.syndrome_zero();
    let gp_ok = !ecc.parity_mismatch;
    match (seg, syn_ok, gp_ok) {
        // Row 4: all clean -> fault-free, free the ECC entry.
        (SegObservation::Match, true, true) => Verdict::SendClean {
            next: Dfh::Stable0,
            correct_bit: None,
        },
        // Row 5: one segment + non-zero syndrome + parity mismatch ->
        // single-bit LV error, correct with the checkbits.
        (SegObservation::OneSegment(seg), false, false) => match decode {
            // Cross-check the two detectors: a genuine single-bit error
            // must lie in the very segment parity flagged. A mismatch means
            // a >= 3-error pattern aliased to a correctable syndrome
            // (SECDED miscorrection) — disable instead of corrupting data.
            SecdedDecode::CorrectedData { bit } if bit % 16 == seg as usize => Verdict::SendClean {
                next: Dfh::Stable1,
                correct_bit: Some(bit),
            },
            SecdedDecode::CorrectedData { .. } => Verdict::ErrorMiss {
                next: Dfh::Disabled,
            },
            SecdedDecode::CorrectedCheck => Verdict::SendClean {
                next: Dfh::Stable1,
                correct_bit: None,
            },
            // Syndrome points outside the codeword: actually multi-bit.
            _ => Verdict::ErrorMiss {
                next: Dfh::Disabled,
            },
        },
        // Row 6: "multi-bit error" — ECC sees an even (>= 2) error count.
        (SegObservation::Match | SegObservation::MultiSegment(_), false, true) => {
            Verdict::ErrorMiss {
                next: Dfh::Disabled,
            }
        }
        // Rows 7/8: two or more mismatching segments -> disable regardless
        // of what the (possibly aliased) syndrome claims.
        (SegObservation::MultiSegment(_), _, _) => Verdict::ErrorMiss {
            next: Dfh::Disabled,
        },
        // Unlisted (x, syndrome nonzero, parity ok): even error count per
        // ECC with one noisy segment -> multi-bit, disable (conservative).
        (SegObservation::OneSegment(_), false, true) => Verdict::ErrorMiss {
            next: Dfh::Disabled,
        },
        // Unlisted (x, syndrome zero, parity ok): only reachable through a
        // fault in a parity storage cell. ECC vouches for the data; keep
        // SECDED around by classifying as one LV fault.
        (SegObservation::OneSegment(_), true, true) => Verdict::SendClean {
            next: Dfh::Stable1,
            correct_bit: None,
        },
        // Unlisted (ok, syndrome zero, parity mismatch): an inconsistent
        // overall-parity checkbit; data vouched for by syndrome + segment
        // parity. Keep SECDED protection.
        (SegObservation::Match, true, false) => Verdict::SendClean {
            next: Dfh::Stable1,
            correct_bit: None,
        },
        // Unlisted (x, syndrome zero, parity mismatch): contradictory ->
        // disable.
        (SegObservation::OneSegment(_), true, false) => Verdict::ErrorMiss {
            next: Dfh::Disabled,
        },
        // Row 6 variant: clean segments but odd ECC evidence -> disable.
        (SegObservation::Match, false, false) => match decode {
            // A single error confined to a *masked* parity region cannot
            // happen with 16 segments; a correctable syndrome with clean
            // segment parity means the flipped bit is a checkbit cell.
            SecdedDecode::CorrectedCheck => Verdict::SendClean {
                next: Dfh::Stable1,
                correct_bit: None,
            },
            SecdedDecode::CorrectedData { bit } => Verdict::SendClean {
                next: Dfh::Stable1,
                correct_bit: Some(bit),
            },
            _ => Verdict::ErrorMiss {
                next: Dfh::Disabled,
            },
        },
    }
}

/// Classifies a read of a `b'10` (stable one-fault) line, protected by
/// 4-bit parity plus SECDED (Table 2 rows 9-13).
pub fn classify_stable1(
    seg: SegObservation,
    ecc: SecdedObservation,
    decode: SecdedDecode,
) -> Verdict {
    let syn_ok = ecc.syndrome_zero();
    let gp_ok = !ecc.parity_mismatch;
    match (seg, syn_ok, gp_ok) {
        // Row 9: everything clean — the original "fault" was a non-LV
        // transient that has since been overwritten. Reclassify fault-free.
        (SegObservation::Match, true, true) => Verdict::SendClean {
            next: Dfh::Stable0,
            correct_bit: None,
        },
        // Row 10: parity complains but ECC is clean — an error pattern ECC
        // cannot see on a line already known faulty. Disable.
        (SegObservation::OneSegment(_) | SegObservation::MultiSegment(_), true, true) => {
            Verdict::ErrorMiss {
                next: Dfh::Disabled,
            }
        }
        // Row 11: the paper marks segments "don't care" here — the
        // expected single-bit LV error; correct and stay. We add one
        // zero-cost refinement: if the 4-bit quarter parity flags a
        // *different* quarter than the bit SECDED wants to flip (or flags
        // several), the observables contradict a single-error hypothesis
        // (a >= 3-error SECDED alias) and the line is disabled instead of
        // silently miscorrected.
        (seg, false, false) => match decode {
            SecdedDecode::CorrectedData { bit } => {
                let consistent = match seg {
                    SegObservation::Match => true, // LV fault currently masked
                    SegObservation::OneSegment(q) => bit % 4 == q as usize,
                    SegObservation::MultiSegment(_) => false,
                };
                if consistent {
                    Verdict::SendClean {
                        next: Dfh::Stable1,
                        correct_bit: Some(bit),
                    }
                } else {
                    Verdict::ErrorMiss {
                        next: Dfh::Disabled,
                    }
                }
            }
            SecdedDecode::CorrectedCheck => Verdict::SendClean {
                next: Dfh::Stable1,
                correct_bit: None,
            },
            _ => Verdict::ErrorMiss {
                next: Dfh::Disabled,
            },
        },
        // Rows 12/13: extra error on a line with an existing LV fault.
        (SegObservation::MultiSegment(_), false, true)
        | (SegObservation::MultiSegment(_), true, false) => Verdict::ErrorMiss {
            next: Dfh::Disabled,
        },
        // Unlisted (ok or x, syndrome nonzero, parity ok): an even error
        // count per ECC -> double error, disable.
        (SegObservation::Match | SegObservation::OneSegment(_), false, true) => {
            Verdict::ErrorMiss {
                next: Dfh::Disabled,
            }
        }
        // Unlisted (ok, syndrome zero, parity mismatch): inconsistent
        // overall-parity checkbit only; data intact.
        (SegObservation::Match, true, false) => Verdict::SendClean {
            next: Dfh::Stable1,
            correct_bit: None,
        },
        // Unlisted (x, syndrome zero, parity mismatch): contradictory ->
        // disable.
        (SegObservation::OneSegment(_), true, false) => Verdict::ErrorMiss {
            next: Dfh::Disabled,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use killi_ecc::bits::Line512;
    use killi_ecc::parity::{seg16, SegObservation};
    use killi_ecc::secded::secded;

    fn obs(
        data: &Line512,
        reference: &Line512,
    ) -> (SegObservation, SecdedObservation, SecdedDecode) {
        let codec = secded();
        let code = codec.encode(reference);
        let seg = SegObservation::observe16(seg16(reference), seg16(data));
        let ecc = codec.observe(data, code);
        (seg, ecc, codec.interpret(ecc))
    }

    #[test]
    fn row4_clean_unknown_goes_stable0() {
        let d = Line512::from_seed(1);
        let (seg, ecc, dec) = obs(&d, &d);
        assert_eq!(
            classify_unknown(seg, ecc, dec),
            Verdict::SendClean {
                next: Dfh::Stable0,
                correct_bit: None
            }
        );
    }

    #[test]
    fn row5_single_fault_corrected_goes_stable1() {
        let clean = Line512::from_seed(2);
        let mut faulty = clean;
        faulty.flip_bit(123);
        let (seg, ecc, dec) = obs(&faulty, &clean);
        match classify_unknown(seg, ecc, dec) {
            Verdict::SendClean {
                next: Dfh::Stable1,
                correct_bit: Some(bit),
            } => assert_eq!(bit, 123),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn row6_double_fault_same_segment_disabled() {
        // Two faults 16 apart land in the same parity segment: parity is
        // blind, ECC catches the even count.
        let clean = Line512::from_seed(3);
        let mut faulty = clean;
        faulty.flip_bit(40);
        faulty.flip_bit(56);
        let (seg, ecc, dec) = obs(&faulty, &clean);
        assert_eq!(seg, SegObservation::Match, "aliased in parity");
        assert_eq!(
            classify_unknown(seg, ecc, dec),
            Verdict::ErrorMiss {
                next: Dfh::Disabled
            }
        );
    }

    #[test]
    fn rows7_8_multi_segment_disabled() {
        let clean = Line512::from_seed(4);
        for bits in [[10usize, 11, 12].as_slice(), &[7, 100, 200, 300]] {
            let mut faulty = clean;
            for &b in bits {
                faulty.flip_bit(b);
            }
            let (seg, ecc, dec) = obs(&faulty, &clean);
            assert!(matches!(seg, SegObservation::MultiSegment(_)));
            assert_eq!(
                classify_unknown(seg, ecc, dec).next_dfh(),
                Dfh::Disabled,
                "bits {bits:?}"
            );
        }
    }

    #[test]
    fn row9_stable1_recovers_to_stable0() {
        let d = Line512::from_seed(5);
        let (_, ecc, dec) = obs(&d, &d);
        assert_eq!(
            classify_stable1(SegObservation::Match, ecc, dec),
            Verdict::SendClean {
                next: Dfh::Stable0,
                correct_bit: None
            }
        );
    }

    #[test]
    fn row10_parity_only_error_on_stable1_disables() {
        let d = Line512::from_seed(6);
        let (_, ecc, dec) = obs(&d, &d); // clean ECC view
        let v = classify_stable1(SegObservation::OneSegment(3), ecc, dec);
        assert_eq!(
            v,
            Verdict::ErrorMiss {
                next: Dfh::Disabled
            }
        );
    }

    #[test]
    fn row11_single_error_on_stable1_corrected_in_place() {
        let clean = Line512::from_seed(7);
        let mut faulty = clean;
        faulty.flip_bit(77);
        let (_, ecc, dec) = obs(&faulty, &clean);
        // 77 % 4 == 1: the flagged segment matches the corrected bit.
        match classify_stable1(SegObservation::OneSegment(1), ecc, dec) {
            Verdict::SendClean {
                next: Dfh::Stable1,
                correct_bit: Some(77),
            } => {}
            other => panic!("{other:?}"),
        }
        // Refinement: a correction pointing outside the flagged quarter is
        // a >= 3-error alias and must disable the line.
        assert_eq!(
            classify_stable1(SegObservation::OneSegment(3), ecc, dec),
            Verdict::ErrorMiss {
                next: Dfh::Disabled
            }
        );
    }

    #[test]
    fn rows12_13_extra_error_on_stable1_disables() {
        let clean = Line512::from_seed(8);
        let mut faulty = clean;
        faulty.flip_bit(1);
        faulty.flip_bit(2);
        let (_, ecc, dec) = obs(&faulty, &clean);
        assert!(!ecc.syndrome_zero());
        assert!(!ecc.parity_mismatch); // double: even
        let v = classify_stable1(SegObservation::MultiSegment(2), ecc, dec);
        assert_eq!(v.next_dfh(), Dfh::Disabled);
    }

    #[test]
    fn stable0_rows() {
        assert_eq!(
            classify_stable0(SegObservation::Match).next_dfh(),
            Dfh::Stable0
        );
        assert_eq!(
            classify_stable0(SegObservation::OneSegment(0)),
            Verdict::ErrorMiss { next: Dfh::Unknown }
        );
        assert_eq!(
            classify_stable0(SegObservation::MultiSegment(3)),
            Verdict::ErrorMiss {
                next: Dfh::Disabled
            }
        );
    }

    #[test]
    fn parity_cell_fault_keeps_line_enabled() {
        // Unlisted (x, syndrome 0, parity ok): a stuck parity cell. ECC
        // vouches for the data; Killi must not lose the line's data.
        let d = Line512::from_seed(9);
        let (_, ecc, dec) = obs(&d, &d);
        match classify_unknown(SegObservation::OneSegment(2), ecc, dec) {
            Verdict::SendClean {
                next: Dfh::Stable1, ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn every_observable_combination_has_a_verdict() {
        // Exhaustiveness under arbitrary (possibly physically-unreachable)
        // observable combinations: the controller must never panic.
        let d = Line512::from_seed(10);
        let codec = secded();
        let code = codec.encode(&d);
        let segs = [
            SegObservation::Match,
            SegObservation::OneSegment(0),
            SegObservation::MultiSegment(5),
        ];
        for seg in segs {
            for flip_bits in [vec![], vec![3usize], vec![3, 4], vec![3, 4, 5]] {
                let mut data = d;
                for &b in &flip_bits {
                    data.flip_bit(b);
                }
                let ecc = codec.observe(&data, code);
                let dec = codec.interpret(ecc);
                let _ = classify_unknown(seg, ecc, dec);
                let _ = classify_stable1(seg, ecc, dec);
            }
        }
    }
}

//! Detected Fault History (DFH) state (Table 1 of the paper).
//!
//! Every L2 line carries two DFH bits in the nominal-voltage tag array. The
//! encoding follows the paper exactly:
//!
//! | DFH   | state   | errors/line | protection                    |
//! |-------|---------|-------------|-------------------------------|
//! | `b00` | stable  | 0           | 4-bit parity                  |
//! | `b01` | initial | unknown     | 16-bit parity + SECDED ECC    |
//! | `b10` | stable  | 1           | 4-bit parity + SECDED ECC     |
//! | `b11` | stable  | >= 2        | none (line disabled)          |

/// The per-line Detected Fault History state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dfh {
    /// `b'00`: classified fault-free; 4-bit parity only.
    Stable0,
    /// `b'01`: unknown fault count; 16-bit parity + SECDED (the reset
    /// state).
    #[default]
    Unknown,
    /// `b'10`: one LV fault; 4-bit parity + SECDED.
    Stable1,
    /// `b'11`: two or more faults; line disabled until the next DFH reset.
    Disabled,
}

impl Dfh {
    /// The two-bit hardware encoding.
    pub fn bits(self) -> u8 {
        match self {
            Dfh::Stable0 => 0b00,
            Dfh::Unknown => 0b01,
            Dfh::Stable1 => 0b10,
            Dfh::Disabled => 0b11,
        }
    }

    /// Decodes the two-bit hardware encoding.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 3`.
    pub fn from_bits(bits: u8) -> Self {
        match bits {
            0b00 => Dfh::Stable0,
            0b01 => Dfh::Unknown,
            0b10 => Dfh::Stable1,
            0b11 => Dfh::Disabled,
            _ => panic!("invalid DFH encoding {bits:#04b}"),
        }
    }

    /// True when the line may hold data (not disabled).
    pub fn usable(self) -> bool {
        self != Dfh::Disabled
    }

    /// True when the line's protection metadata lives (partly) in the ECC
    /// cache.
    pub fn needs_ecc_entry(self) -> bool {
        matches!(self, Dfh::Unknown | Dfh::Stable1)
    }

    /// Killi's victim-selection priority among invalid lines
    /// (`b'01 > b'00 > b'10`, §4.4); `None` for disabled lines.
    pub fn victim_class(self) -> Option<u8> {
        match self {
            Dfh::Unknown => Some(0),
            Dfh::Stable0 => Some(1),
            Dfh::Stable1 => Some(2),
            Dfh::Disabled => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrip() {
        for dfh in [Dfh::Stable0, Dfh::Unknown, Dfh::Stable1, Dfh::Disabled] {
            assert_eq!(Dfh::from_bits(dfh.bits()), dfh);
        }
    }

    #[test]
    fn encoding_matches_table1() {
        assert_eq!(Dfh::Stable0.bits(), 0b00);
        assert_eq!(Dfh::Unknown.bits(), 0b01);
        assert_eq!(Dfh::Stable1.bits(), 0b10);
        assert_eq!(Dfh::Disabled.bits(), 0b11);
    }

    #[test]
    fn reset_state_is_unknown() {
        assert_eq!(Dfh::default(), Dfh::Unknown);
    }

    #[test]
    fn usability() {
        assert!(Dfh::Stable0.usable());
        assert!(Dfh::Unknown.usable());
        assert!(Dfh::Stable1.usable());
        assert!(!Dfh::Disabled.usable());
    }

    #[test]
    fn ecc_entry_requirement() {
        assert!(!Dfh::Stable0.needs_ecc_entry());
        assert!(Dfh::Unknown.needs_ecc_entry());
        assert!(Dfh::Stable1.needs_ecc_entry());
        assert!(!Dfh::Disabled.needs_ecc_entry());
    }

    #[test]
    fn victim_priority_order() {
        // b'01 > b'00 > b'10, disabled never selected.
        assert!(Dfh::Unknown.victim_class() < Dfh::Stable0.victim_class());
        assert!(Dfh::Stable0.victim_class() < Dfh::Stable1.victim_class());
        assert_eq!(Dfh::Disabled.victim_class(), None);
    }

    #[test]
    #[should_panic(expected = "invalid DFH")]
    fn invalid_bits_panic() {
        Dfh::from_bits(4);
    }
}

//! Detected Fault History (DFH) state (Table 1 of the paper).
//!
//! Every L2 line carries two DFH bits in the nominal-voltage tag array. The
//! encoding follows the paper exactly:
//!
//! | DFH   | state   | errors/line | protection                    |
//! |-------|---------|-------------|-------------------------------|
//! | `b00` | stable  | 0           | 4-bit parity                  |
//! | `b01` | initial | unknown     | 16-bit parity + SECDED ECC    |
//! | `b10` | stable  | 1           | 4-bit parity + SECDED ECC     |
//! | `b11` | stable  | >= 2        | none (line disabled)          |

/// The per-line Detected Fault History state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dfh {
    /// `b'00`: classified fault-free; 4-bit parity only.
    Stable0,
    /// `b'01`: unknown fault count; 16-bit parity + SECDED (the reset
    /// state).
    #[default]
    Unknown,
    /// `b'10`: one LV fault; 4-bit parity + SECDED.
    Stable1,
    /// `b'11`: two or more faults; line disabled until the next DFH reset.
    Disabled,
}

impl Dfh {
    /// The two-bit hardware encoding.
    pub fn bits(self) -> u8 {
        match self {
            Dfh::Stable0 => 0b00,
            Dfh::Unknown => 0b01,
            Dfh::Stable1 => 0b10,
            Dfh::Disabled => 0b11,
        }
    }

    /// Decodes the two-bit hardware encoding.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 3`.
    pub fn from_bits(bits: u8) -> Self {
        match bits {
            0b00 => Dfh::Stable0,
            0b01 => Dfh::Unknown,
            0b10 => Dfh::Stable1,
            0b11 => Dfh::Disabled,
            _ => panic!("invalid DFH encoding {bits:#04b}"),
        }
    }

    /// True when the line may hold data (not disabled).
    pub fn usable(self) -> bool {
        self != Dfh::Disabled
    }

    /// True when the line's protection metadata lives (partly) in the ECC
    /// cache.
    pub fn needs_ecc_entry(self) -> bool {
        matches!(self, Dfh::Unknown | Dfh::Stable1)
    }

    /// Killi's victim-selection priority among invalid lines
    /// (`b'01 > b'00 > b'10`, §4.4); `None` for disabled lines.
    pub fn victim_class(self) -> Option<u8> {
        match self {
            Dfh::Unknown => Some(0),
            Dfh::Stable0 => Some(1),
            Dfh::Stable1 => Some(2),
            Dfh::Disabled => None,
        }
    }
}

/// Packed per-line DFH storage: the hardware's two tag-array bits per
/// line, 32 lines to a `u64` word. The scheme's DFH census and
/// victim-class reads sweep this flat bit array instead of striding over
/// per-line state records.
#[derive(Debug, Clone)]
pub struct DfhArray {
    words: Vec<u64>,
    lines: usize,
}

impl DfhArray {
    /// All lines in the reset state ([`Dfh::Unknown`]).
    pub fn new(lines: usize) -> Self {
        let mut a = DfhArray {
            words: vec![0; lines.div_ceil(32)],
            lines,
        };
        a.reset();
        a
    }

    /// Number of lines covered.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// The DFH state of `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    #[inline]
    pub fn get(&self, line: usize) -> Dfh {
        assert!(line < self.lines, "line {line} out of range");
        Dfh::from_bits(((self.words[line >> 5] >> ((line & 31) * 2)) & 0b11) as u8)
    }

    /// Sets the DFH state of `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    #[inline]
    pub fn set(&mut self, line: usize, dfh: Dfh) {
        assert!(line < self.lines, "line {line} out of range");
        let shift = (line & 31) * 2;
        let word = &mut self.words[line >> 5];
        *word = (*word & !(0b11 << shift)) | (u64::from(dfh.bits()) << shift);
    }

    /// Returns every line to [`Dfh::Unknown`] (the DFH reset broadcast).
    pub fn reset(&mut self) {
        // Unknown encodes as b01 in every two-bit lane.
        for w in &mut self.words {
            *w = 0x5555_5555_5555_5555;
        }
    }

    /// Counts lines in each state, indexed by [`Dfh::bits`].
    pub fn census(&self) -> [u64; 4] {
        let mut counts = [0u64; 4];
        for line in 0..self.lines {
            counts[self.get(line).bits() as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrip() {
        for dfh in [Dfh::Stable0, Dfh::Unknown, Dfh::Stable1, Dfh::Disabled] {
            assert_eq!(Dfh::from_bits(dfh.bits()), dfh);
        }
    }

    #[test]
    fn encoding_matches_table1() {
        assert_eq!(Dfh::Stable0.bits(), 0b00);
        assert_eq!(Dfh::Unknown.bits(), 0b01);
        assert_eq!(Dfh::Stable1.bits(), 0b10);
        assert_eq!(Dfh::Disabled.bits(), 0b11);
    }

    #[test]
    fn reset_state_is_unknown() {
        assert_eq!(Dfh::default(), Dfh::Unknown);
    }

    #[test]
    fn usability() {
        assert!(Dfh::Stable0.usable());
        assert!(Dfh::Unknown.usable());
        assert!(Dfh::Stable1.usable());
        assert!(!Dfh::Disabled.usable());
    }

    #[test]
    fn ecc_entry_requirement() {
        assert!(!Dfh::Stable0.needs_ecc_entry());
        assert!(Dfh::Unknown.needs_ecc_entry());
        assert!(Dfh::Stable1.needs_ecc_entry());
        assert!(!Dfh::Disabled.needs_ecc_entry());
    }

    #[test]
    fn victim_priority_order() {
        // b'01 > b'00 > b'10, disabled never selected.
        assert!(Dfh::Unknown.victim_class() < Dfh::Stable0.victim_class());
        assert!(Dfh::Stable0.victim_class() < Dfh::Stable1.victim_class());
        assert_eq!(Dfh::Disabled.victim_class(), None);
    }

    #[test]
    #[should_panic(expected = "invalid DFH")]
    fn invalid_bits_panic() {
        Dfh::from_bits(4);
    }

    #[test]
    fn array_starts_unknown_and_roundtrips() {
        let mut a = DfhArray::new(67); // straddles word boundaries
        assert_eq!(a.lines(), 67);
        for line in 0..67 {
            assert_eq!(a.get(line), Dfh::Unknown);
        }
        let states = [Dfh::Stable0, Dfh::Unknown, Dfh::Stable1, Dfh::Disabled];
        for line in 0..67 {
            a.set(line, states[line % 4]);
        }
        for line in 0..67 {
            assert_eq!(a.get(line), states[line % 4], "line {line}");
        }
    }

    #[test]
    fn array_set_does_not_disturb_neighbours() {
        let mut a = DfhArray::new(64);
        a.set(31, Dfh::Disabled);
        a.set(32, Dfh::Stable0);
        assert_eq!(a.get(30), Dfh::Unknown);
        assert_eq!(a.get(31), Dfh::Disabled);
        assert_eq!(a.get(32), Dfh::Stable0);
        assert_eq!(a.get(33), Dfh::Unknown);
    }

    #[test]
    fn array_reset_and_census() {
        let mut a = DfhArray::new(100);
        a.set(3, Dfh::Disabled);
        a.set(7, Dfh::Stable1);
        a.set(9, Dfh::Stable0);
        let c = a.census();
        assert_eq!(c[Dfh::Stable0.bits() as usize], 1);
        assert_eq!(c[Dfh::Unknown.bits() as usize], 97);
        assert_eq!(c[Dfh::Stable1.bits() as usize], 1);
        assert_eq!(c[Dfh::Disabled.bits() as usize], 1);
        a.reset();
        assert_eq!(a.census()[Dfh::Unknown.bits() as usize], 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn array_rejects_out_of_range() {
        DfhArray::new(10).get(10);
    }
}

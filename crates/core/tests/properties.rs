//! Property-based tests for Killi's classification logic: the Table 2
//! state machine must be total, safe and convergent for arbitrary fault
//! populations (killi-check harness).

use std::sync::Arc;

use killi::classify::{classify_stable0, classify_stable1, classify_unknown, Verdict};
use killi::dfh::Dfh;
use killi::scheme::{KilliConfig, KilliScheme};
use killi_check::{check, check_cases, Gen};
use killi_ecc::bits::Line512;
use killi_ecc::parity::SegObservation;
use killi_ecc::secded::secded;
use killi_fault::map::{CellFault, FaultMap};
use killi_sim::protection::{LineProtection, ReadOutcome};

fn gen_seg(g: &mut Gen) -> SegObservation {
    match g.usize_in(0, 3) {
        0 => SegObservation::Match,
        1 => SegObservation::OneSegment(g.usize_in(0, 16) as u8),
        _ => SegObservation::MultiSegment(g.usize_in(2, 16) as u8),
    }
}

/// An arbitrary fault set on one line: distinct cells with random stuck
/// polarity. `universe` bounds the cell index (512 = data bits only,
/// 516 = data + check cells).
fn gen_faults(g: &mut Gen, universe: usize, max: usize) -> Vec<CellFault> {
    g.distinct(universe, 0, max)
        .into_iter()
        .map(|cell| CellFault {
            cell: cell as u16,
            stuck: g.bool(),
        })
        .collect()
}

fn single_line_scheme(faults: Vec<CellFault>, config: KilliConfig) -> (KilliScheme, Arc<FaultMap>) {
    let mut per_line = vec![Vec::new(); 16];
    per_line[0] = faults;
    let map = Arc::new(FaultMap::from_faults(per_line));
    let scheme = KilliScheme::new(config, Arc::clone(&map), 16, 4);
    (scheme, map)
}

fn small_config() -> KilliConfig {
    KilliConfig {
        ecc_cache: killi::ecc_cache::EccCacheConfig { ratio: 4, ways: 4 },
        ..KilliConfig::with_ratio(4)
    }
}

#[test]
fn classification_is_total_and_never_enables_from_garbage() {
    check(
        "classification_is_total_and_never_enables_from_garbage",
        |g| {
            // Arbitrary (even physically inconsistent) observables must yield
            // a verdict without panicking, and a multi-segment mismatch must
            // never leave the line enabled as fault-free.
            let seg = gen_seg(g);
            let data = Line512::from_seed(g.u64());
            let flips = g.distinct(512, 0, 4);
            let code = secded().encode(&data);
            let mut corrupted = data;
            for &b in &flips {
                corrupted.flip_bit(b);
            }
            let ecc = secded().observe(&corrupted, code);
            let dec = secded().interpret(ecc);
            let v_unknown = classify_unknown(seg, ecc, dec);
            let v_stable1 = classify_stable1(seg, ecc, dec);
            let v_stable0 = classify_stable0(seg);
            if let SegObservation::MultiSegment(_) = seg {
                assert_ne!(v_unknown.next_dfh(), Dfh::Stable0);
                assert_ne!(v_stable0.next_dfh(), Dfh::Stable0);
            }
            // From the unknown state, a clean SendClean verdict never lands on
            // Disabled (disabling always signals an error miss).
            if let Verdict::SendClean { next, .. } = v_unknown {
                assert_ne!(next, Dfh::Disabled);
            }
            let _ = v_stable1;
        },
    );
}

#[test]
fn killi_converges_and_never_lies_for_arbitrary_single_line_faults() {
    check_cases(
        "killi_converges_and_never_lies_for_arbitrary_single_line_faults",
        64,
        |g| {
            // One line with an arbitrary fault set, driven through repeated
            // fill/read/evict cycles with varying data. Invariants:
            //  - delivered data is either correct or the access is an error
            //    miss (except the documented multi-fault-masked hazard,
            //    excluded by construction here: we check only delivered ==
            //    intended when the verdict claims clean AND the true fault
            //    count is < 2).
            //  - once disabled, the line is never allocated again.
            let faults = gen_faults(g, 516, 5);
            let data_fault_count = faults.iter().filter(|f| f.cell < 512).count();
            let data_seeds = g.vec(1, 5, Gen::u64);
            let (mut killi, map) = single_line_scheme(faults, small_config());
            for &ds in &data_seeds {
                if killi.dfh(0) == Dfh::Disabled {
                    assert_eq!(killi.victim_class(0), None);
                    break;
                }
                let data = Line512::from_seed(ds);
                let fill = killi.on_fill(0, &data);
                if !fill.accepted {
                    break;
                }
                let mut stored = data;
                map.corrupt_data(0, &mut stored);
                match killi.on_read_hit(0, &mut stored) {
                    ReadOutcome::Clean { .. } => {
                        if data_fault_count < 2 {
                            assert_eq!(stored, data, "corrupt data delivered as clean");
                        }
                    }
                    ReadOutcome::ErrorMiss { .. } => {}
                }
                let mut stored2 = data;
                map.corrupt_data(0, &mut stored2);
                killi.on_evict(0, &stored2);
            }
        },
    );
}

#[test]
fn inverted_check_classification_is_exact() {
    check_cases("inverted_check_classification_is_exact", 64, |g| {
        let faults = gen_faults(g, 512, 5);
        let n = faults.len();
        let data = Line512::from_seed(g.u64());
        let mut config = small_config();
        config.inverted_write_check = true;
        let (mut killi, _map) = single_line_scheme(faults, config);
        let fill = killi.on_fill(0, &data);
        let expected = match n {
            0 => Dfh::Stable0,
            1 => Dfh::Stable1,
            _ => Dfh::Disabled,
        };
        assert_eq!(killi.dfh(0), expected);
        assert_eq!(fill.accepted, n < 2);
    });
}

/// DFH state-machine properties (Table 2): under training sequences whose
/// written data never masks a stuck-at fault, classification is exact and
/// transitions only ever move forward — `01 -> {00, 10, 11}` and
/// `10 -> 11`; never backwards. (Masked faults are the documented
/// exception: a masking read can legitimately send `10 -> 00`, which is
/// why this suite constructs unmasked data explicitly.)
mod dfh_state_machine {
    use super::*;

    /// Data that exposes every data-cell fault: each faulty cell is
    /// written with the opposite of its stuck value.
    fn unmasking_data(g: &mut Gen, faults: &[CellFault]) -> Line512 {
        let mut data = Line512::from_seed(g.u64());
        for f in faults {
            if usize::from(f.cell) < 512 {
                data.set_bit(usize::from(f.cell), !f.stuck);
            }
        }
        data
    }

    /// Transition pairs `(from_bits, to_bits)` the Table 2 machine may
    /// take during unmasked training. `Dfh::bits`: 00 = Stable0,
    /// 01 = Unknown, 10 = Stable1, 11 = Disabled.
    const ALLOWED: [(u8, u8); 4] = [(0b01, 0b00), (0b01, 0b10), (0b01, 0b11), (0b10, 0b11)];

    #[test]
    fn transitions_never_move_backwards_under_unmasked_training() {
        check(
            "transitions_never_move_backwards_under_unmasked_training",
            |g| {
                let faults = gen_faults(g, 512, 4);
                let rounds = g.usize_in(1, 8);
                let (mut killi, map) = single_line_scheme(faults.clone(), small_config());
                for _ in 0..rounds {
                    if killi.dfh(0) == Dfh::Disabled {
                        break;
                    }
                    let data = unmasking_data(g, &faults);
                    if !killi.on_fill(0, &data).accepted {
                        break;
                    }
                    let mut stored = data;
                    map.corrupt_data(0, &mut stored);
                    let _ = killi.on_read_hit(0, &mut stored);
                    let mut stored2 = data;
                    map.corrupt_data(0, &mut stored2);
                    killi.on_evict(0, &stored2);
                }
                let t = killi.transitions();
                for from in 0..4u8 {
                    for to in 0..4u8 {
                        if t[from as usize][to as usize] > 0 {
                            assert!(
                                ALLOWED.contains(&(from, to)),
                                "illegal DFH transition {from:02b} -> {to:02b} \
                             ({} times) with faults {faults:?}",
                                t[from as usize][to as usize],
                            );
                        }
                    }
                }
            },
        );
    }

    /// Faults in *distinct* seg16 residue classes: segmented parity then
    /// sees every fault, so classification is exact (no >= 3-error SECDED
    /// alias can hide inside one segment).
    fn gen_faults_distinct_segments(g: &mut Gen, max: usize) -> Vec<CellFault> {
        g.distinct(16, 0, max)
            .into_iter()
            .map(|class| CellFault {
                cell: (class + 16 * g.usize_in(0, 32)) as u16,
                stuck: g.bool(),
            })
            .collect()
    }

    #[test]
    fn unmasked_training_classifies_exactly_after_one_read() {
        check("unmasked_training_classifies_exactly_after_one_read", |g| {
            let faults = gen_faults_distinct_segments(g, 4);
            let n = faults.len();
            let (mut killi, map) = single_line_scheme(faults.clone(), small_config());
            let data = unmasking_data(g, &faults);
            let fill = killi.on_fill(0, &data);
            assert!(fill.accepted, "b'01 lines accept fills during training");
            let mut stored = data;
            map.corrupt_data(0, &mut stored);
            let _ = killi.on_read_hit(0, &mut stored);
            let expected = match n {
                0 => Dfh::Stable0,
                1 => Dfh::Stable1,
                _ => Dfh::Disabled,
            };
            assert_eq!(
                killi.dfh(0),
                expected,
                "{n} unmasked segment-distinct faults must classify exactly"
            );
        });
    }

    #[test]
    fn unmasked_faulty_lines_are_never_enabled_as_fault_free() {
        check(
            "unmasked_faulty_lines_are_never_enabled_as_fault_free",
            |g| {
                // Even when SECDED aliasing mis-ranks a >= 3-fault line as
                // b'10 (the paper's own coverage is < 100 % there), a line
                // with any unmasked fault must never classify b'00.
                let faults = gen_faults(g, 512, 4);
                if faults.is_empty() {
                    return;
                }
                let (mut killi, map) = single_line_scheme(faults.clone(), small_config());
                let data = unmasking_data(g, &faults);
                killi.on_fill(0, &data);
                let mut stored = data;
                map.corrupt_data(0, &mut stored);
                let _ = killi.on_read_hit(0, &mut stored);
                assert_ne!(
                    killi.dfh(0),
                    Dfh::Stable0,
                    "{} unmasked faults enabled as fault-free",
                    faults.len()
                );
            },
        );
    }

    #[test]
    fn classified_states_are_stable_under_further_unmasked_use() {
        check(
            "classified_states_are_stable_under_further_unmasked_use",
            |g| {
                // After exact classification, further unmasked traffic must not
                // move a b'00 or b'10 line anywhere (same physical faults keep
                // producing the same observables).
                let faults = gen_faults(g, 512, 1);
                let (mut killi, map) = single_line_scheme(faults.clone(), small_config());
                let data = unmasking_data(g, &faults);
                killi.on_fill(0, &data);
                let mut stored = data;
                map.corrupt_data(0, &mut stored);
                let _ = killi.on_read_hit(0, &mut stored);
                let settled = killi.dfh(0);
                assert_ne!(settled, Dfh::Unknown, "<= 1 fault classifies in one read");
                for _ in 0..4 {
                    let data = unmasking_data(g, &faults);
                    killi.on_fill(0, &data);
                    let mut stored = data;
                    map.corrupt_data(0, &mut stored);
                    let _ = killi.on_read_hit(0, &mut stored);
                    assert_eq!(killi.dfh(0), settled, "classified state moved");
                }
            },
        );
    }

    #[test]
    fn disabled_is_absorbing_without_scrub() {
        check("disabled_is_absorbing_without_scrub", |g| {
            // >= 2 unmasked segment-distinct faults disable the line;
            // afterwards it refuses allocation and stays disabled no
            // matter the traffic.
            let faults = gen_faults_distinct_segments(g, 4);
            if faults.len() < 2 {
                return; // property only concerns multi-fault lines
            }
            let (mut killi, map) = single_line_scheme(faults.clone(), small_config());
            let data = unmasking_data(g, &faults);
            killi.on_fill(0, &data);
            let mut stored = data;
            map.corrupt_data(0, &mut stored);
            let _ = killi.on_read_hit(0, &mut stored);
            assert_eq!(killi.dfh(0), Dfh::Disabled);
            for _ in 0..4 {
                let data = Line512::from_seed(g.u64());
                let fill = killi.on_fill(0, &data);
                assert!(!fill.accepted, "disabled lines must reject fills");
                assert_eq!(killi.victim_class(0), None);
                assert_eq!(killi.dfh(0), Dfh::Disabled);
            }
        });
    }
}

mod write_back {
    use super::*;
    use killi_sim::cache::{CacheGeometry, L2Cache, WritePolicy};
    use killi_sim::mem::MainMemory;

    fn wb_setup(
        faults: Vec<(usize, Vec<CellFault>)>,
        write_back_protection: bool,
    ) -> (L2Cache, MainMemory, Arc<FaultMap>) {
        let geom = CacheGeometry {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
        };
        let mut per_line = vec![Vec::new(); geom.lines()];
        for (line, fs) in faults {
            per_line[line] = fs;
        }
        let map = Arc::new(FaultMap::from_faults(per_line));
        let mut config = KilliConfig {
            ecc_cache: killi::ecc_cache::EccCacheConfig { ratio: 4, ways: 4 },
            ..KilliConfig::with_ratio(4)
        };
        config.write_back_protection = write_back_protection;
        let scheme = KilliScheme::new(config, Arc::clone(&map), geom.lines(), geom.ways);
        let mut l2 = L2Cache::new(geom, 4, 2, 2, Arc::clone(&map), Box::new(scheme));
        l2.set_write_policy(WritePolicy::WriteBack);
        (l2, MainMemory::new(9, 10), map)
    }

    /// Address of physical line (set, way 0) assuming it is the first fill
    /// into its set.
    fn addr_of_set(set: usize) -> u64 {
        (set as u64) * 64
    }

    #[test]
    fn dirty_single_fault_line_survives_under_5_6_1() {
        // A store-dirtied line whose physical slot has one stuck-at fault:
        // the escalated SECDED protection corrects reads in place.
        let fault = CellFault {
            cell: 10,
            stuck: true,
        };
        let (mut l2, mut mem, _) = wb_setup(vec![(0, vec![fault])], true);
        let addr = addr_of_set(0);
        l2.access_store(addr, 0, &mut mem);
        let r = l2.access_load(addr, 100, &mut mem);
        assert!(r.hit);
        assert_eq!(l2.stats.sdc_events, 0);
        assert_eq!(l2.stats.dirty_data_loss, 0);
    }

    #[test]
    fn unprotected_dirty_writes_on_faulty_lines_lose_data_without_5_6_1() {
        // Same scenario with a *two*-fault slot: without escalation the
        // line is in the unknown state with SECDED during training, so
        // detection works (error miss -> loss counted); with escalation
        // enabled Killi still detects, proving the counter wiring. The
        // interesting contrast is the correction: 1-fault dirty lines are
        // corrected in place with 5.6.1 but lost once classified b'00
        // without it (parity detects, nothing can correct).
        let fault = CellFault {
            cell: 10,
            stuck: true,
        };
        let (mut l2, mut mem, _) = wb_setup(vec![(0, vec![fault])], false);
        let addr = addr_of_set(0);
        // Train the line to b'00 with a masking read first: write data
        // with bit 10 set so the stuck-at-1 cell hides.
        // (Simplest deterministic route: loads classify the line.)
        l2.access_load(addr, 0, &mut mem);
        let _ = l2.access_load(addr, 50, &mut mem); // classify via hit
                                                    // Now dirty it; plain Killi stores it with 4-bit parity only.
        l2.access_store(addr, 100, &mut mem);
        let _ = l2.access_load(addr, 200, &mut mem);
        // Depending on masking, either the read was clean or the data was
        // lost; what must never happen is silent corruption.
        assert_eq!(l2.stats.sdc_events, 0);
    }

    #[test]
    fn dirty_two_fault_line_survives_with_dected_escalation() {
        // b'10 classification first, then dirty data under DEC-TED.
        let faults = vec![CellFault {
            cell: 10,
            stuck: true,
        }];
        let (mut l2, mut mem, _) = wb_setup(vec![(0, faults)], true);
        let addr = addr_of_set(0);
        // Classify to b'10 via a load (fault unmasked with random data).
        l2.access_load(addr, 0, &mut mem);
        l2.access_load(addr, 50, &mut mem);
        // Dirty the line repeatedly; every read must come back clean.
        for i in 0..10u64 {
            l2.access_store(addr, 100 + i * 10, &mut mem);
            l2.access_load(addr, 105 + i * 10, &mut mem);
        }
        assert_eq!(l2.stats.sdc_events, 0);
        assert_eq!(l2.stats.dirty_data_loss, 0);
    }

    #[test]
    fn write_back_mode_is_deterministic_and_loss_free_on_clean_cache() {
        let (mut l2, mut mem, _) = wb_setup(vec![], true);
        for i in 0..500u64 {
            let addr = (i * 97 % 256) * 64;
            if i % 3 == 0 {
                l2.access_store(addr, i * 7, &mut mem);
            } else {
                l2.access_load(addr, i * 7, &mut mem);
            }
        }
        assert_eq!(l2.stats.sdc_events, 0);
        assert_eq!(l2.stats.dirty_data_loss, 0);
        assert!(l2.stats.writebacks > 0, "evictions must write back");
    }
}

mod scrubber {
    use super::*;

    #[test]
    fn scrub_reclaims_transiently_disabled_lines() {
        // A line disabled by a burst of soft errors (no persistent fault)
        // is reclaimed by the scrubber and reclassifies to b'00.
        let map = Arc::new(FaultMap::from_faults(vec![Vec::new(); 16]));
        let mut killi = KilliScheme::new(
            KilliConfig {
                ecc_cache: killi::ecc_cache::EccCacheConfig { ratio: 4, ways: 4 },
                ..KilliConfig::with_ratio(4)
            },
            Arc::clone(&map),
            16,
            4,
        );
        let data = Line512::from_seed(1);
        killi.on_fill(0, &data);
        let mut arr = data;
        killi.on_read_hit(0, &mut arr); // -> b'00
        assert_eq!(killi.dfh(0), Dfh::Stable0);

        // A 3-bit soft burst corrupts the array; parity disables the line.
        killi.on_fill(0, &data);
        let mut upset = data;
        upset.flip_bit(10);
        upset.flip_bit(11);
        upset.flip_bit(12);
        let _ = killi.on_read_hit(0, &mut upset);
        assert_eq!(killi.dfh(0), Dfh::Disabled);

        // Footnote 7: the scrubber reclaims it.
        assert_eq!(killi.scrub_reclaim(), 1);
        assert_eq!(killi.dfh(0), Dfh::Unknown);
        killi.on_fill(0, &data);
        let mut clean = data;
        assert!(matches!(
            killi.on_read_hit(0, &mut clean),
            killi_sim::protection::ReadOutcome::Clean { .. }
        ));
        assert_eq!(killi.dfh(0), Dfh::Stable0, "fully reclaimed");
    }

    #[test]
    fn scrub_does_not_resurrect_persistent_faults_for_long() {
        let faults = vec![
            CellFault {
                cell: 3,
                stuck: true,
            },
            CellFault {
                cell: 40,
                stuck: true,
            },
        ];
        let mut per_line = vec![Vec::new(); 16];
        per_line[0] = faults;
        let map = Arc::new(FaultMap::from_faults(per_line));
        let mut killi = KilliScheme::new(
            KilliConfig {
                ecc_cache: killi::ecc_cache::EccCacheConfig { ratio: 4, ways: 4 },
                ..KilliConfig::with_ratio(4)
            },
            Arc::clone(&map),
            16,
            4,
        );
        let data = Line512::zero();
        killi.on_fill(0, &data);
        let mut arr = data;
        map.corrupt_data(0, &mut arr);
        let _ = killi.on_read_hit(0, &mut arr);
        assert_eq!(killi.dfh(0), Dfh::Disabled);
        killi.scrub_reclaim();
        // Next use re-discovers the persistent double fault.
        killi.on_fill(0, &data);
        let mut arr2 = data;
        map.corrupt_data(0, &mut arr2);
        let _ = killi.on_read_hit(0, &mut arr2);
        assert_eq!(killi.dfh(0), Dfh::Disabled, "persistent faults return");
    }
}

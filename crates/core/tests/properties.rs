//! Property-based tests for Killi's classification logic: the Table 2
//! state machine must be total, safe and convergent for arbitrary fault
//! populations.

use std::sync::Arc;

use killi::classify::{classify_stable0, classify_stable1, classify_unknown, Verdict};
use killi::dfh::Dfh;
use killi::scheme::{KilliConfig, KilliScheme};
use killi_ecc::bits::Line512;
use killi_ecc::parity::SegObservation;
use killi_ecc::secded::secded;
use killi_fault::map::{CellFault, FaultMap};
use killi_sim::protection::{LineProtection, ReadOutcome};
use proptest::prelude::*;

fn arb_seg() -> impl Strategy<Value = SegObservation> {
    prop_oneof![
        Just(SegObservation::Match),
        (0u8..16).prop_map(SegObservation::OneSegment),
        (2u8..16).prop_map(SegObservation::MultiSegment),
    ]
}

proptest! {
    #[test]
    fn classification_is_total_and_never_enables_from_garbage(
        seg in arb_seg(),
        seed in any::<u64>(),
        flips in proptest::collection::btree_set(0usize..512, 0..5),
    ) {
        // Arbitrary (even physically inconsistent) observables must yield
        // a verdict without panicking, and a multi-segment mismatch must
        // never leave the line enabled as fault-free.
        let data = Line512::from_seed(seed);
        let code = secded().encode(&data);
        let mut corrupted = data;
        for &b in &flips {
            corrupted.flip_bit(b);
        }
        let ecc = secded().observe(&corrupted, code);
        let dec = secded().interpret(ecc);
        let v_unknown = classify_unknown(seg, ecc, dec);
        let v_stable1 = classify_stable1(seg, ecc, dec);
        let v_stable0 = classify_stable0(seg);
        if let SegObservation::MultiSegment(_) = seg {
            prop_assert_ne!(v_unknown.next_dfh(), Dfh::Stable0);
            prop_assert_ne!(v_stable0.next_dfh(), Dfh::Stable0);
        }
        // From the unknown state, a clean SendClean verdict never lands on
        // Disabled (disabling always signals an error miss).
        if let Verdict::SendClean { next, .. } = v_unknown {
            prop_assert_ne!(next, Dfh::Disabled);
        }
        let _ = v_stable1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn killi_converges_and_never_lies_for_arbitrary_single_line_faults(
        cells in proptest::collection::btree_set(0u16..516, 0..6),
        polarity in proptest::collection::vec(any::<bool>(), 6),
        data_seeds in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        // One line with an arbitrary fault set, driven through repeated
        // fill/read/evict cycles with varying data. Invariants:
        //  - delivered data is either correct or the access is an error miss
        //    (except the documented multi-fault-masked hazard, excluded by
        //    construction here: we check only delivered == intended when
        //    the verdict claims clean AND the true fault count is < 2).
        //  - once disabled, the line is never allocated again.
        let faults: Vec<CellFault> = cells
            .iter()
            .zip(polarity.iter())
            .map(|(&cell, &stuck)| CellFault { cell, stuck })
            .collect();
        let data_fault_count = faults.iter().filter(|f| f.cell < 512).count();
        let mut per_line = vec![Vec::new(); 16];
        per_line[0] = faults;
        let map = Arc::new(FaultMap::from_faults(per_line));
        let mut killi = KilliScheme::new(
            KilliConfig {
                ecc_cache: killi::ecc_cache::EccCacheConfig { ratio: 4, ways: 4 },
                ..KilliConfig::with_ratio(4)
            },
            Arc::clone(&map),
            16,
            4,
        );
        for &ds in &data_seeds {
            if killi.dfh(0) == Dfh::Disabled {
                prop_assert_eq!(killi.victim_class(0), None);
                break;
            }
            let data = Line512::from_seed(ds);
            let fill = killi.on_fill(0, &data);
            if !fill.accepted {
                break;
            }
            let mut stored = data;
            map.corrupt_data(0, &mut stored);
            match killi.on_read_hit(0, &mut stored) {
                ReadOutcome::Clean { .. } => {
                    if data_fault_count < 2 {
                        prop_assert_eq!(stored, data, "corrupt data delivered as clean");
                    }
                }
                ReadOutcome::ErrorMiss { .. } => {}
            }
            let mut stored2 = data;
            map.corrupt_data(0, &mut stored2);
            killi.on_evict(0, &stored2);
        }
    }

    #[test]
    fn inverted_check_classification_is_exact(
        cells in proptest::collection::btree_set(0u16..512, 0..6),
        polarity in proptest::collection::vec(any::<bool>(), 6),
        data_seed in any::<u64>(),
    ) {
        let faults: Vec<CellFault> = cells
            .iter()
            .zip(polarity.iter())
            .map(|(&cell, &stuck)| CellFault { cell, stuck })
            .collect();
        let n = faults.len();
        let mut per_line = vec![Vec::new(); 16];
        per_line[0] = faults;
        let map = Arc::new(FaultMap::from_faults(per_line));
        let mut config = KilliConfig {
            ecc_cache: killi::ecc_cache::EccCacheConfig { ratio: 4, ways: 4 },
            ..KilliConfig::with_ratio(4)
        };
        config.inverted_write_check = true;
        let mut killi = KilliScheme::new(config, Arc::clone(&map), 16, 4);
        let data = Line512::from_seed(data_seed);
        let fill = killi.on_fill(0, &data);
        let expected = match n {
            0 => Dfh::Stable0,
            1 => Dfh::Stable1,
            _ => Dfh::Disabled,
        };
        prop_assert_eq!(killi.dfh(0), expected);
        prop_assert_eq!(fill.accepted, n < 2);
    }
}

mod write_back {
    use super::*;
    use killi_sim::cache::{CacheGeometry, L2Cache, WritePolicy};
    use killi_sim::mem::MainMemory;

    fn wb_setup(
        faults: Vec<(usize, Vec<CellFault>)>,
        write_back_protection: bool,
    ) -> (L2Cache, MainMemory, Arc<FaultMap>) {
        let geom = CacheGeometry {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
        };
        let mut per_line = vec![Vec::new(); geom.lines()];
        for (line, fs) in faults {
            per_line[line] = fs;
        }
        let map = Arc::new(FaultMap::from_faults(per_line));
        let mut config = KilliConfig {
            ecc_cache: killi::ecc_cache::EccCacheConfig { ratio: 4, ways: 4 },
            ..KilliConfig::with_ratio(4)
        };
        config.write_back_protection = write_back_protection;
        let scheme = KilliScheme::new(config, Arc::clone(&map), geom.lines(), geom.ways);
        let mut l2 = L2Cache::new(geom, 4, 2, 2, Arc::clone(&map), Box::new(scheme));
        l2.set_write_policy(WritePolicy::WriteBack);
        (l2, MainMemory::new(9, 10), map)
    }

    /// Address of physical line (set, way 0) assuming it is the first fill
    /// into its set.
    fn addr_of_set(set: usize) -> u64 {
        (set as u64) * 64
    }

    #[test]
    fn dirty_single_fault_line_survives_under_5_6_1() {
        // A store-dirtied line whose physical slot has one stuck-at fault:
        // the escalated SECDED protection corrects reads in place.
        let fault = CellFault { cell: 10, stuck: true };
        let (mut l2, mut mem, _) = wb_setup(vec![(0, vec![fault])], true);
        let addr = addr_of_set(0);
        l2.access_store(addr, 0, &mut mem);
        let r = l2.access_load(addr, 100, &mut mem);
        assert!(r.hit);
        assert_eq!(l2.stats.sdc_events, 0);
        assert_eq!(l2.stats.dirty_data_loss, 0);
    }

    #[test]
    fn unprotected_dirty_writes_on_faulty_lines_lose_data_without_5_6_1() {
        // Same scenario with a *two*-fault slot: without escalation the
        // line is in the unknown state with SECDED during training, so
        // detection works (error miss -> loss counted); with escalation
        // enabled Killi still detects, proving the counter wiring. The
        // interesting contrast is the correction: 1-fault dirty lines are
        // corrected in place with 5.6.1 but lost once classified b'00
        // without it (parity detects, nothing can correct).
        let fault = CellFault { cell: 10, stuck: true };
        let (mut l2, mut mem, _) = wb_setup(vec![(0, vec![fault])], false);
        let addr = addr_of_set(0);
        // Train the line to b'00 with a masking read first: write data
        // with bit 10 set so the stuck-at-1 cell hides.
        // (Simplest deterministic route: loads classify the line.)
        l2.access_load(addr, 0, &mut mem);
        let _ = l2.access_load(addr, 50, &mut mem); // classify via hit
        // Now dirty it; plain Killi stores it with 4-bit parity only.
        l2.access_store(addr, 100, &mut mem);
        let _ = l2.access_load(addr, 200, &mut mem);
        // Depending on masking, either the read was clean or the data was
        // lost; what must never happen is silent corruption.
        assert_eq!(l2.stats.sdc_events, 0);
    }

    #[test]
    fn dirty_two_fault_line_survives_with_dected_escalation() {
        // b'10 classification first, then dirty data under DEC-TED.
        let faults = vec![CellFault { cell: 10, stuck: true }];
        let (mut l2, mut mem, _) = wb_setup(vec![(0, faults)], true);
        let addr = addr_of_set(0);
        // Classify to b'10 via a load (fault unmasked with random data).
        l2.access_load(addr, 0, &mut mem);
        l2.access_load(addr, 50, &mut mem);
        // Dirty the line repeatedly; every read must come back clean.
        for i in 0..10u64 {
            l2.access_store(addr, 100 + i * 10, &mut mem);
            l2.access_load(addr, 105 + i * 10, &mut mem);
        }
        assert_eq!(l2.stats.sdc_events, 0);
        assert_eq!(l2.stats.dirty_data_loss, 0);
    }

    #[test]
    fn write_back_mode_is_deterministic_and_loss_free_on_clean_cache() {
        let (mut l2, mut mem, _) = wb_setup(vec![], true);
        for i in 0..500u64 {
            let addr = (i * 97 % 256) * 64;
            if i % 3 == 0 {
                l2.access_store(addr, i * 7, &mut mem);
            } else {
                l2.access_load(addr, i * 7, &mut mem);
            }
        }
        assert_eq!(l2.stats.sdc_events, 0);
        assert_eq!(l2.stats.dirty_data_loss, 0);
        assert!(l2.stats.writebacks > 0, "evictions must write back");
    }
}

mod scrubber {
    use super::*;

    #[test]
    fn scrub_reclaims_transiently_disabled_lines() {
        // A line disabled by a burst of soft errors (no persistent fault)
        // is reclaimed by the scrubber and reclassifies to b'00.
        let map = Arc::new(FaultMap::from_faults(vec![Vec::new(); 16]));
        let mut killi = KilliScheme::new(
            KilliConfig {
                ecc_cache: killi::ecc_cache::EccCacheConfig { ratio: 4, ways: 4 },
                ..KilliConfig::with_ratio(4)
            },
            Arc::clone(&map),
            16,
            4,
        );
        let data = Line512::from_seed(1);
        killi.on_fill(0, &data);
        let mut arr = data;
        killi.on_read_hit(0, &mut arr); // -> b'00
        assert_eq!(killi.dfh(0), Dfh::Stable0);

        // A 3-bit soft burst corrupts the array; parity disables the line.
        killi.on_fill(0, &data);
        let mut upset = data;
        upset.flip_bit(10);
        upset.flip_bit(11);
        upset.flip_bit(12);
        let _ = killi.on_read_hit(0, &mut upset);
        assert_eq!(killi.dfh(0), Dfh::Disabled);

        // Footnote 7: the scrubber reclaims it.
        assert_eq!(killi.scrub_reclaim(), 1);
        assert_eq!(killi.dfh(0), Dfh::Unknown);
        killi.on_fill(0, &data);
        let mut clean = data;
        assert!(matches!(
            killi.on_read_hit(0, &mut clean),
            killi_sim::protection::ReadOutcome::Clean { .. }
        ));
        assert_eq!(killi.dfh(0), Dfh::Stable0, "fully reclaimed");
    }

    #[test]
    fn scrub_does_not_resurrect_persistent_faults_for_long() {
        let faults = vec![
            CellFault { cell: 3, stuck: true },
            CellFault { cell: 40, stuck: true },
        ];
        let mut per_line = vec![Vec::new(); 16];
        per_line[0] = faults;
        let map = Arc::new(FaultMap::from_faults(per_line));
        let mut killi = KilliScheme::new(
            KilliConfig {
                ecc_cache: killi::ecc_cache::EccCacheConfig { ratio: 4, ways: 4 },
                ..KilliConfig::with_ratio(4)
            },
            Arc::clone(&map),
            16,
            4,
        );
        let data = Line512::zero();
        killi.on_fill(0, &data);
        let mut arr = data;
        map.corrupt_data(0, &mut arr);
        let _ = killi.on_read_hit(0, &mut arr);
        assert_eq!(killi.dfh(0), Dfh::Disabled);
        killi.scrub_reclaim();
        // Next use re-discovers the persistent double fault.
        killi.on_fill(0, &data);
        let mut arr2 = data;
        map.corrupt_data(0, &mut arr2);
        let _ = killi.on_read_hit(0, &mut arr2);
        assert_eq!(killi.dfh(0), Dfh::Disabled, "persistent faults return");
    }
}

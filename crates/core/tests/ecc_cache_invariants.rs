//! Invariant tests for the ECC cache and its coupling to the L2 (§4.1/§4.3).
//!
//! Two structural properties the performance figures silently rely on:
//!
//! 1. Only lines whose protection metadata lives in the ECC cache —
//!    DFH `b'01` (initial) and `b'10` (one fault) — ever own an entry,
//!    and while such a line holds data its entry is present. `b'00`
//!    lines run on in-array parity alone and `b'11` lines hold nothing,
//!    so an entry for either would be a capacity leak that inflates the
//!    contention Figures 4/5 measure.
//!
//! 2. Displacing an entry by capacity invalidates exactly the one L2
//!    line it protected (when the line cannot re-classify in place),
//!    and the simulator books it under `ecc_induced_invalidations`.
//!
//! The first property is checked under randomized operation sequences
//! that drive [`KilliScheme`] through the same `LineProtection` call
//! contract the simulator uses; the second end-to-end through the real
//! banked L2.

use std::sync::Arc;

use killi::dfh::Dfh;
use killi::ecc_cache::EccCacheConfig;
use killi::scheme::{KilliConfig, KilliScheme};
use killi_check::{check, Gen};
use killi_ecc::bits::Line512;
use killi_fault::map::{CellFault, FaultMap};
use killi_sim::cache::{CacheGeometry, L2Cache};
use killi_sim::mem::MainMemory;
use killi_sim::protection::{LineProtection, ReadOutcome};

const LINES: usize = 16;
const WAYS: usize = 4;

/// Drives a [`KilliScheme`] through the simulator's call contract while
/// mirroring which lines currently hold data, so invariants can relate
/// entry residency to line validity.
struct Harness {
    scheme: KilliScheme,
    map: Arc<FaultMap>,
    valid: [bool; LINES],
    data: [Line512; LINES],
}

impl Harness {
    fn new(g: &mut Gen) -> Self {
        // Sparse random stuck-at faults over the data cells so every DFH
        // class is reachable.
        let mut per_line = vec![Vec::new(); LINES];
        for faults in per_line.iter_mut() {
            for _ in 0..g.usize_in(0, 2) {
                faults.push(CellFault {
                    cell: g.usize_in(0, 511) as u16,
                    stuck: g.bool(),
                });
            }
            faults.sort_by_key(|f| f.cell);
            faults.dedup_by_key(|f| f.cell);
        }
        let map = Arc::new(FaultMap::from_faults(per_line));
        let config = KilliConfig {
            // 4 entries in one set: maximal contention.
            ecc_cache: EccCacheConfig { ratio: 4, ways: 4 },
            ..KilliConfig::with_ratio(4)
        };
        Harness {
            scheme: KilliScheme::new(config, Arc::clone(&map), LINES, WAYS),
            map,
            valid: [false; LINES],
            data: [Line512::zero(); LINES],
        }
    }

    fn stored(&self, line: usize) -> Line512 {
        let mut v = self.data[line];
        self.map.corrupt_data(line, &mut v);
        v
    }

    /// One random protection-interface call, following the L2's contract
    /// (fills only into usable ways, displacement handling, eviction
    /// notification).
    fn step(&mut self, g: &mut Gen) {
        let line = g.usize_in(0, LINES - 1);
        match g.usize_in(0, 3) {
            // Fill (demand miss or refetch).
            0 => {
                if self.scheme.victim_class(line).is_none() {
                    return; // disabled way: the L2 would pick another
                }
                if self.valid[line] {
                    let stored = self.stored(line);
                    self.scheme.on_evict(line, &stored);
                    self.valid[line] = false;
                }
                if self.scheme.victim_class(line).is_none() {
                    return; // eviction training disabled it
                }
                let intended = Line512::from_seed(g.u64());
                let outcome = self.scheme.on_fill(line, &intended);
                for &victim in &outcome.invalidate {
                    assert_ne!(victim, line, "scheme invalidated the line it filled");
                    if self.valid[victim] {
                        let stored = self.stored(victim);
                        if !self.scheme.on_displaced(victim, &stored) {
                            self.valid[victim] = false;
                        }
                    }
                }
                if outcome.accepted {
                    self.valid[line] = true;
                    self.data[line] = intended;
                }
            }
            // Read hit.
            1 => {
                if !self.valid[line] {
                    return;
                }
                self.scheme.on_promote(line);
                let mut delivered = self.stored(line);
                if let ReadOutcome::ErrorMiss { .. } = self.scheme.on_read_hit(line, &mut delivered)
                {
                    // The L2 drops the line without re-notifying the
                    // scheme (it already updated itself).
                    self.valid[line] = false;
                }
            }
            // Eviction (capacity or external invalidation).
            2 => {
                if self.valid[line] {
                    let stored = self.stored(line);
                    self.scheme.on_evict(line, &stored);
                    self.valid[line] = false;
                }
            }
            // Promotion of an L2 hit.
            _ => {
                if self.valid[line] {
                    self.scheme.on_promote(line);
                }
            }
        }
    }

    fn assert_invariants(&self, step: usize) {
        let ecc = self.scheme.ecc_cache();
        assert!(ecc.occupancy() <= ecc.capacity());
        for line in 0..LINES {
            let dfh = self.scheme.dfh(line);
            if ecc.has_entry(line) {
                assert!(
                    dfh.needs_ecc_entry(),
                    "step {step}: line {line} in {dfh:?} owns an ECC entry",
                );
            }
            if self.valid[line] && dfh.needs_ecc_entry() {
                assert!(
                    ecc.has_entry(line),
                    "step {step}: valid line {line} in {dfh:?} lost its ECC entry",
                );
            }
        }
    }
}

#[test]
fn only_unknown_and_stable1_lines_own_entries() {
    check("only_unknown_and_stable1_lines_own_entries", |g| {
        let mut h = Harness::new(g);
        for step in 0..200 {
            h.step(g);
            h.assert_invariants(step);
        }
    });
}

#[test]
fn scrub_and_reset_preserve_entry_ownership() {
    check("scrub_and_reset_preserve_entry_ownership", |g| {
        let mut h = Harness::new(g);
        for _ in 0..60 {
            h.step(g);
        }
        // Scrubbing returns b'11 lines to b'01 without giving them
        // entries (they re-acquire one on their next fill).
        h.scheme.scrub_reclaim();
        h.assert_invariants(1000);
        for line in 0..LINES {
            assert_ne!(h.scheme.dfh(line), Dfh::Disabled, "scrub reclaims all");
        }
        for step in 0..60 {
            h.step(g);
            h.assert_invariants(2000 + step);
        }
        // A DFH reset wipes both the states and the entries.
        h.scheme.reset();
        h.valid = [false; LINES];
        assert_eq!(h.scheme.ecc_cache().occupancy(), 0);
        h.assert_invariants(3000);
    });
}

/// End-to-end: a capacity-displaced entry invalidates exactly the line it
/// protected, and the L2 books it as an ECC-induced invalidation.
#[test]
fn displacement_invalidates_exactly_the_protected_line() {
    // 16 KiB, 16-way L2 -> 256 lines, 16 sets. ECC cache 1:64 with 4 ways
    // -> 4 entries in a single set: every line contends for the same set.
    let geom = CacheGeometry {
        size_bytes: 16 * 1024,
        ways: 16,
        line_bytes: 64,
    };
    let lines = geom.lines();
    let mut mem = MainMemory::new(99, 100);

    // The first load to set 0 fills physical line 0 (all ways invalid and
    // equal priority -> way 0). Give that line one *unmasked* stuck-at
    // fault — polarity opposite the stored bit — so it classifies b'10
    // rather than salvaging itself when its entry is displaced.
    let mut per_line = vec![Vec::new(); lines];
    per_line[0] = vec![CellFault {
        cell: 11,
        stuck: !mem.line_data(0).bit(11),
    }];
    let map = Arc::new(FaultMap::from_faults(per_line));
    let config = KilliConfig {
        ecc_cache: EccCacheConfig { ratio: 64, ways: 4 },
        ..KilliConfig::with_ratio(64)
    };
    let scheme = KilliScheme::new(config, Arc::clone(&map), lines, geom.ways);
    let mut l2 = L2Cache::new(geom, 4, 1, 2, map, Box::new(scheme));

    // Five cold loads into five distinct L2 sets: each stays b'01 and
    // inserts an entry; the fifth displaces the LRU entry (line 0's).
    let addr_of_set = |set: u64| set * 64;
    for set in 0..4 {
        let r = l2.access_load(addr_of_set(set), 0, &mut mem);
        assert!(!r.hit, "cold load");
    }
    assert_eq!(l2.stats.ecc_induced_invalidations, 0);
    let r = l2.access_load(addr_of_set(4), 0, &mut mem);
    assert!(!r.hit);
    assert_eq!(
        l2.stats.ecc_induced_invalidations, 1,
        "displaced faulty line invalidated"
    );

    // Exactly line 0's copy is gone: sets 1..=4 still hit, set 0 misses.
    for set in 1..5 {
        let r = l2.access_load(addr_of_set(set), 100, &mut mem);
        assert!(r.hit, "set {set} must be untouched by the displacement");
    }
    let r = l2.access_load(addr_of_set(0), 100, &mut mem);
    assert!(!r.hit, "the displaced line lost its data");
    assert_eq!(
        l2.stats.ecc_induced_invalidations, 1,
        "no further collateral invalidations"
    );
}

/// Control for the previous test: a fault-free displaced line re-verifies
/// in place (b'01 -> b'00) and keeps its data — no invalidation.
#[test]
fn fault_free_displaced_line_is_salvaged_in_place() {
    let geom = CacheGeometry {
        size_bytes: 16 * 1024,
        ways: 16,
        line_bytes: 64,
    };
    let map = Arc::new(FaultMap::fault_free(geom.lines()));
    let config = KilliConfig {
        ecc_cache: EccCacheConfig { ratio: 64, ways: 4 },
        ..KilliConfig::with_ratio(64)
    };
    let scheme = KilliScheme::new(config, Arc::clone(&map), geom.lines(), geom.ways);
    let mut l2 = L2Cache::new(geom, 4, 1, 2, map, Box::new(scheme));
    let mut mem = MainMemory::new(7, 100);

    for set in 0..5u64 {
        let r = l2.access_load(set * 64, 0, &mut mem);
        assert!(!r.hit);
    }
    assert_eq!(l2.stats.ecc_induced_invalidations, 0, "clean line salvaged");
    for set in 0..5u64 {
        let r = l2.access_load(set * 64, 100, &mut mem);
        assert!(r.hit, "set {set}: every line keeps its data");
    }
}

//! Baseline low-voltage protection schemes the paper compares Killi
//! against (§5.1–§5.2).
//!
//! - [`per_line::PerLineEcc`] — pre-characterized per-line SECDED (FLAIR's
//!   steady state) and DEC-TED baselines,
//! - [`msecc::MsEcc`] — Orthogonal-Latin-Square MS-ECC, the
//!   strongest/most-expensive scheme,
//! - [`flair_online::FlairOnline`] — FLAIR's online DMR + rotating-MBIST
//!   training mode (the overhead the paper's Figure 4 runs exclude), as an
//!   ablation.
//!
//! All baselines run on the identical simulator substrate as Killi via the
//! `LineProtection` trait; the only privileged information they receive is
//! the MBIST-equivalent oracle disable map, matching the paper's
//! methodology. Each is a composition of the `killi::pipeline` layers, and
//! [`register_baselines`] declares them all to a
//! [`killi::registry::SchemeRegistry`].

pub mod flair_online;
pub mod msecc;
pub mod per_line;

use killi::registry::{
    BuildError, CellSpan, LineRule, ParamSpec, ParamValue, SchemeDescriptor, SchemeRegistry,
};

pub use flair_online::FlairOnline;
pub use msecc::MsEcc;
pub use per_line::{EccStrength, PerLineEcc};

/// Per-line SECDED keeps any single-fault line (data + checkbit cells)
/// in service; a second fault disables the line. FLAIR's steady state,
/// the plain `secded` baseline and FLAIR-online all bin lines this way.
const SECDED_RULE: LineRule = LineRule::Total {
    span: CellSpan::DataSecded,
    max_faults: 1,
};

/// Maps a constructor's `Err(String)` onto a typed geometry error.
fn geometry_err(scheme: &'static str) -> impl Fn(String) -> BuildError {
    move |reason| BuildError::Geometry {
        scheme: scheme.to_string(),
        reason,
    }
}

/// Registers the baseline schemes (`flair`, `secded`, `dected`,
/// `flair-online`, `ms-ecc`) as declarative registry entries.
pub fn register_baselines(registry: &mut SchemeRegistry) {
    registry.register(SchemeDescriptor {
        name: "flair",
        doc: "per-line SECDED with >= 2-fault lines disabled (FLAIR steady state)",
        params: Vec::new(),
        label: |_| "flair".to_string(),
        build: |_, ctx| {
            let scheme = PerLineEcc::try_new(
                "flair",
                EccStrength::Secded,
                std::sync::Arc::clone(&ctx.fault_map),
                ctx.geometry.lines(),
            )
            .map_err(geometry_err("flair"))?;
            Ok(Box::new(scheme))
        },
        admissibility: |_| SECDED_RULE,
    });

    registry.register(SchemeDescriptor {
        name: "secded",
        doc: "plain per-line SECDED (the Table 5 area-normalization baseline)",
        params: Vec::new(),
        label: |_| "secded".to_string(),
        build: |_, ctx| {
            let scheme = PerLineEcc::try_new(
                "secded",
                EccStrength::Secded,
                std::sync::Arc::clone(&ctx.fault_map),
                ctx.geometry.lines(),
            )
            .map_err(geometry_err("secded"))?;
            Ok(Box::new(scheme))
        },
        admissibility: |_| SECDED_RULE,
    });

    registry.register(SchemeDescriptor {
        name: "dected",
        doc: "per-line DEC-TED with >= 3-fault lines disabled",
        params: Vec::new(),
        label: |_| "dected".to_string(),
        build: |_, ctx| {
            let scheme = PerLineEcc::try_new(
                "dected",
                EccStrength::Dected,
                std::sync::Arc::clone(&ctx.fault_map),
                ctx.geometry.lines(),
            )
            .map_err(geometry_err("dected"))?;
            Ok(Box::new(scheme))
        },
        admissibility: |_| LineRule::Total {
            span: CellSpan::DataDected,
            max_faults: 2,
        },
    });

    registry.register(SchemeDescriptor {
        name: "flair-online",
        doc: "FLAIR with its online DMR + rotating-MBIST training cost",
        params: vec![ParamSpec {
            name: "accesses_per_pair",
            doc: "L2 accesses spent testing each way pair (0 = lines x 4)",
            default: ParamValue::U64(0),
        }],
        label: |_| "flair-online".to_string(),
        build: |p, ctx| {
            let lines = ctx.geometry.lines();
            let per_pair = match p.u64("accesses_per_pair") {
                0 => lines as u64 * 4,
                n => n,
            };
            let scheme = FlairOnline::try_new(
                std::sync::Arc::clone(&ctx.fault_map),
                lines,
                ctx.geometry.ways,
                per_pair,
            )
            .map_err(geometry_err("flair-online"))?;
            Ok(Box::new(scheme))
        },
        // The online training cost changes runtime, not which lines
        // FLAIR's SECDED can ultimately keep in service.
        admissibility: |_| SECDED_RULE,
    });

    registry.register(SchemeDescriptor {
        name: "ms-ecc",
        doc: "OLSC(m, t) on every line, ~11-fault correction (MS-ECC, MICRO'09)",
        params: vec![
            ParamSpec {
                name: "m",
                doc: "OLSC block width in bits (4, 8 or 16)",
                default: ParamValue::U64(8),
            },
            ParamSpec {
                name: "t",
                doc: "corrections per block (1 <= t, 2t <= m+1)",
                default: ParamValue::U64(2),
            },
        ],
        label: |_| "ms-ecc".to_string(),
        build: |p, ctx| {
            let scheme = MsEcc::try_with_code(
                std::sync::Arc::clone(&ctx.fault_map),
                ctx.geometry.lines(),
                p.u64("m") as usize,
                p.u64("t") as usize,
            )
            .map_err(geometry_err("ms-ecc"))?;
            Ok(Box::new(scheme))
        },
        // OLSC(m, t): m*m-cell data blocks, t corrections each.
        admissibility: |p| LineRule::PerBlock {
            block_cells: (p.u64("m") * p.u64("m")) as u32,
            max_faults: p.u64("t") as u32,
        },
    });
}

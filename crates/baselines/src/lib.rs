//! Baseline low-voltage protection schemes the paper compares Killi
//! against (§5.1–§5.2).
//!
//! - [`per_line::PerLineEcc`] — pre-characterized per-line SECDED (FLAIR's
//!   steady state) and DEC-TED baselines,
//! - [`msecc::MsEcc`] — Orthogonal-Latin-Square MS-ECC, the
//!   strongest/most-expensive scheme,
//! - [`flair_online::FlairOnline`] — FLAIR's online DMR + rotating-MBIST
//!   training mode (the overhead the paper's Figure 4 runs exclude), as an
//!   ablation.
//!
//! All baselines run on the identical simulator substrate as Killi via the
//! `LineProtection` trait; the only privileged information they receive is
//! the MBIST-equivalent oracle disable map, matching the paper's
//! methodology.

pub mod flair_online;
pub mod msecc;
pub mod per_line;

pub use msecc::MsEcc;
pub use per_line::{EccStrength, PerLineEcc};

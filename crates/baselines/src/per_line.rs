//! Per-line ECC baselines: SECDED (FLAIR after training) and DEC-TED.
//!
//! These schemes follow the paper's evaluation methodology (§5.1): "we
//! assume a pre-characterization phase (MBIST) where each line in the cache
//! is bitmapped and flagged either as enabled or disabled". The oracle
//! disable map comes straight from the injected fault population — exactly
//! the information MBIST would produce — and the reported runtime excludes
//! the characterization cost, as in the paper.
//!
//! FLAIR's steady state is SECDED per line with >= 2-fault lines disabled;
//! the DECTED baseline disables >= 3-fault lines. Checkbits live in the
//! low-voltage array, so they are subject to stuck-at corruption like the
//! data.
//!
//! Both are pure pipeline compositions: a per-line codec + [`LineStore`] +
//! [`OracleClassifier`] + [`PassthroughPolicy`].

use std::sync::Arc;

use killi::pipeline::{
    CodecVerdict, DectedLineCodec, DetectionCodec, LineStore, OracleClassifier, PassthroughPolicy,
    ProtectionPipeline, SecdedLineCodec,
};
use killi_ecc::bits::Line512;
use killi_fault::map::{layout, FaultMap, LineId};
use killi_obs::{MetricSet, Sink};
use killi_sim::protection::{FillOutcome, LineProtection, ReadOutcome};

use killi::ecc_cache::EccPayload;

/// Which per-line code a [`PerLineEcc`] baseline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccStrength {
    /// SECDED(523, 512): corrects 1, detects 2; disable at >= 2 faults.
    Secded,
    /// DEC-TED BCH: corrects 2, detects 3; disable at >= 3 faults.
    Dected,
}

impl EccStrength {
    fn disable_threshold(self) -> usize {
        match self {
            EccStrength::Secded => 2,
            EccStrength::Dected => 3,
        }
    }

    fn checkbit_cells(self) -> std::ops::Range<u16> {
        match self {
            EccStrength::Secded => layout::SECDED,
            EccStrength::Dected => layout::DECTED,
        }
    }
}

/// Either per-line codec, selected by [`EccStrength`].
#[derive(Debug, Clone)]
pub enum PerLineCodec {
    /// SECDED(523, 512).
    Secded(SecdedLineCodec),
    /// DEC-TED BCH.
    Dected(DectedLineCodec),
}

impl DetectionCodec for PerLineCodec {
    fn check_latency(&self) -> u32 {
        match self {
            PerLineCodec::Secded(c) => c.check_latency(),
            PerLineCodec::Dected(c) => c.check_latency(),
        }
    }

    fn encode(&mut self, line: LineId, data: &Line512) -> EccPayload {
        match self {
            PerLineCodec::Secded(c) => c.encode(line, data),
            PerLineCodec::Dected(c) => c.encode(line, data),
        }
    }

    fn check(&mut self, line: LineId, stored: &mut Line512, payload: &EccPayload) -> CodecVerdict {
        match self {
            PerLineCodec::Secded(c) => c.check(line, stored, payload),
            PerLineCodec::Dected(c) => c.check(line, stored, payload),
        }
    }
}

/// A pre-characterized per-line ECC baseline scheme.
pub struct PerLineEcc {
    strength: EccStrength,
    pipe: ProtectionPipeline<PerLineCodec, LineStore, OracleClassifier, PassthroughPolicy>,
}

impl PerLineEcc {
    /// Builds a baseline over `l2_lines` lines; the MBIST oracle disables
    /// every line whose protected region (data + checkbits) has at least
    /// the strength's threshold of faults.
    ///
    /// # Panics
    ///
    /// Panics if the fault map does not cover `l2_lines`.
    pub fn new(
        name: &'static str,
        strength: EccStrength,
        map: Arc<FaultMap>,
        l2_lines: usize,
    ) -> Self {
        match Self::try_new(name, strength, map, l2_lines) {
            Ok(scheme) => scheme,
            Err(message) => panic!("{message}"),
        }
    }

    /// Fallible construction (the registry path).
    pub fn try_new(
        name: &'static str,
        strength: EccStrength,
        map: Arc<FaultMap>,
        l2_lines: usize,
    ) -> Result<Self, String> {
        if map.lines() < l2_lines {
            return Err("fault map too small".to_string());
        }
        let oracle = OracleClassifier::from_threshold(
            &map,
            l2_lines,
            strength.checkbit_cells(),
            strength.disable_threshold(),
        );
        let codec = match strength {
            EccStrength::Secded => PerLineCodec::Secded(SecdedLineCodec::new(map)),
            EccStrength::Dected => PerLineCodec::Dected(DectedLineCodec::new(map)),
        };
        Ok(PerLineEcc {
            strength,
            pipe: ProtectionPipeline::new(
                name,
                codec,
                LineStore::new(l2_lines),
                oracle,
                PassthroughPolicy,
            ),
        })
    }

    /// SECDED-per-line with >= 2-fault lines disabled: FLAIR's post-training
    /// steady state (its online characterization cost is excluded, as in
    /// the paper's own simulations).
    pub fn flair(map: Arc<FaultMap>, l2_lines: usize) -> Self {
        Self::new("flair", EccStrength::Secded, map, l2_lines)
    }

    /// Plain SECDED-per-line (the Table 5 area-normalization baseline).
    pub fn secded_per_line(map: Arc<FaultMap>, l2_lines: usize) -> Self {
        Self::new("secded", EccStrength::Secded, map, l2_lines)
    }

    /// DEC-TED per line with >= 3-fault lines disabled.
    pub fn dected_per_line(map: Arc<FaultMap>, l2_lines: usize) -> Self {
        Self::new("dected", EccStrength::Dected, map, l2_lines)
    }

    /// Number of lines the oracle disabled.
    pub fn disabled_count(&self) -> usize {
        self.pipe.classifier().disabled_count()
    }
}

impl LineProtection for PerLineEcc {
    fn name(&self) -> &str {
        self.pipe.name()
    }

    fn reset(&mut self) {
        // Pre-characterized state persists; only cached codes go away.
        self.pipe.reset();
    }

    fn victim_class(&self, line: LineId) -> Option<u8> {
        self.pipe.victim_class(line)
    }

    fn on_fill(&mut self, line: LineId, data: &Line512) -> FillOutcome {
        self.pipe.on_fill(line, data)
    }

    fn on_read_hit(&mut self, line: LineId, stored: &mut Line512) -> ReadOutcome {
        self.pipe.on_read_hit(line, stored)
    }

    fn on_evict(&mut self, line: LineId, stored: &Line512) {
        self.pipe.on_evict(line, stored);
    }

    fn hit_latency_extra(&self) -> u32 {
        self.pipe.hit_latency_extra()
    }

    fn attach_sink(&mut self, sink: Sink) {
        self.pipe.attach_sink(sink);
    }

    fn metrics(&self) -> MetricSet {
        self.pipe.metrics()
    }
}

impl std::fmt::Debug for PerLineEcc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerLineEcc")
            .field("name", &self.pipe.name())
            .field("strength", &self.strength)
            .field("disabled", &self.disabled_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use killi_fault::map::CellFault;

    fn fault(cell: u16, stuck: bool) -> CellFault {
        CellFault { cell, stuck }
    }

    fn map_with(faults: Vec<(usize, Vec<CellFault>)>) -> Arc<FaultMap> {
        let mut per_line = vec![Vec::new(); 16];
        for (line, fs) in faults {
            per_line[line] = fs;
        }
        Arc::new(FaultMap::from_faults(per_line))
    }

    #[test]
    fn oracle_disables_by_threshold() {
        let map = map_with(vec![
            (0, vec![fault(1, true)]),
            (1, vec![fault(1, true), fault(2, true)]),
            (2, vec![fault(1, true), fault(2, true), fault(3, true)]),
        ]);
        let flair = PerLineEcc::flair(Arc::clone(&map), 16);
        assert_eq!(flair.disabled_count(), 2, "2 and 3 faults disabled");
        assert_eq!(flair.victim_class(0), Some(0));
        assert_eq!(flair.victim_class(1), None);

        let dected = PerLineEcc::dected_per_line(map, 16);
        assert_eq!(dected.disabled_count(), 1, "only >= 3 faults disabled");
        assert_eq!(dected.victim_class(1), Some(0));
        assert_eq!(dected.victim_class(2), None);
    }

    #[test]
    fn checkbit_cell_faults_count_toward_disable() {
        let map = map_with(vec![(
            0,
            vec![fault(layout::SECDED.start, true), fault(5, true)],
        )]);
        let flair = PerLineEcc::flair(map, 16);
        assert_eq!(flair.disabled_count(), 1);
    }

    #[test]
    fn secded_corrects_single_fault() {
        let map = map_with(vec![(0, vec![fault(10, true)])]);
        let mut s = PerLineEcc::flair(Arc::clone(&map), 16);
        let data = Line512::zero();
        s.on_fill(0, &data);
        let mut arr = data;
        map.corrupt_data(0, &mut arr);
        match s.on_read_hit(0, &mut arr) {
            ReadOutcome::Clean { corrected, .. } => assert!(corrected),
            other => panic!("{other:?}"),
        }
        assert_eq!(arr, data);
    }

    #[test]
    fn dected_corrects_double_fault() {
        let map = map_with(vec![(0, vec![fault(10, true), fault(200, true)])]);
        let mut s = PerLineEcc::dected_per_line(Arc::clone(&map), 16);
        let data = Line512::zero();
        s.on_fill(0, &data);
        let mut arr = data;
        map.corrupt_data(0, &mut arr);
        match s.on_read_hit(0, &mut arr) {
            ReadOutcome::Clean { corrected, .. } => assert!(corrected),
            other => panic!("{other:?}"),
        }
        assert_eq!(arr, data);
        assert_eq!(s.protection_stats().corrections, 1);
    }

    #[test]
    fn soft_error_on_top_of_fault_detected_not_silent() {
        // FLAIR's known weakness (§2.3): SECDED alone on a line with one LV
        // fault plus one soft error can only *detect*.
        let map = map_with(vec![(0, vec![fault(10, true)])]);
        let mut s = PerLineEcc::flair(Arc::clone(&map), 16);
        let data = Line512::zero();
        s.on_fill(0, &data);
        let mut arr = data;
        map.corrupt_data(0, &mut arr);
        arr.flip_bit(300); // soft error
        match s.on_read_hit(0, &mut arr) {
            ReadOutcome::ErrorMiss { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(s.protection_stats().detections, 1);
    }

    #[test]
    fn corrupted_checkbit_cells_still_handled() {
        // A fault in a SECDED checkbit cell alone: correctable, data clean.
        let map = map_with(vec![(0, vec![fault(layout::SECDED.start + 2, true)])]);
        let mut s = PerLineEcc::flair(Arc::clone(&map), 16);
        let data = Line512::zero();
        s.on_fill(0, &data);
        let mut arr = data;
        map.corrupt_data(0, &mut arr);
        match s.on_read_hit(0, &mut arr) {
            ReadOutcome::Clean { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(arr, data);
    }

    #[test]
    fn eviction_clears_code_and_reset_keeps_oracle() {
        let map = map_with(vec![(1, vec![fault(1, true), fault(2, true)])]);
        let mut s = PerLineEcc::flair(map, 16);
        let data = Line512::from_seed(3);
        s.on_fill(0, &data);
        s.on_evict(0, &data);
        s.reset();
        assert_eq!(s.disabled_count(), 1, "oracle map survives reset");
    }

    #[test]
    fn try_new_reports_undersized_map() {
        let map = map_with(vec![]);
        let err = PerLineEcc::try_new("flair", EccStrength::Secded, map, 64).unwrap_err();
        assert_eq!(err, "fault map too small");
    }
}

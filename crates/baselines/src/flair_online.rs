//! FLAIR's *online* training mode (Qureshi & Chishti, DSN'13), modelled as
//! an ablation.
//!
//! The paper's headline comparisons pre-train FLAIR and exclude this cost;
//! §5.3 describes what is being excluded: FLAIR tests two ways of the
//! 16-way cache with MBIST while the remaining 14 ways run under Dual
//! Modular Redundancy (DMR), leaving an effective capacity of 7/16 until
//! every way pair has been characterized. This module implements that
//! training dynamic so its cost can be quantified against Killi's
//! always-on-full-bandwidth learning.
//!
//! Structurally this is the pipeline with a stateful classifier: the
//! [`SecdedLineCodec`] and [`LineStore`] layers are the plain FLAIR ones,
//! while [`PairTestClassifier`] carries the rotating-MBIST phase machine
//! (its `on_access` hook is the training clock, and `observe` feedback
//! counts the DMR rescues).

use std::sync::Arc;

use killi::pipeline::{
    CodecVerdict, FaultClassifier, LineStore, PassthroughPolicy, ProtectionPipeline,
    SecdedLineCodec,
};
use killi_ecc::bits::Line512;
use killi_fault::map::{FaultMap, LineId};
use killi_obs::{MetricSet, Sink};
use killi_sim::protection::{FillOutcome, LineProtection, ReadOutcome};

/// Training progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Way pair `pair` is under MBIST; untested ways run DMR.
    Training { pair: usize },
    /// All ways characterized: plain per-line SECDED with the learned
    /// disable map.
    Steady,
}

/// FLAIR's online classifier: a rotating MBIST over way pairs that learns
/// the per-line disable map the offline oracle would have provided.
pub struct PairTestClassifier {
    map: Arc<FaultMap>,
    l2_ways: usize,
    /// L2 accesses spent testing one way pair.
    accesses_per_pair: u64,
    phase: Phase,
    accesses: u64,
    tested: Vec<bool>,
    disabled: Vec<bool>,
    dmr_saves: u64,
}

impl PairTestClassifier {
    /// A classifier for `l2_lines` lines of `l2_ways` associativity;
    /// `accesses_per_pair` controls how long each MBIST round lasts.
    pub fn new(
        map: Arc<FaultMap>,
        l2_lines: usize,
        l2_ways: usize,
        accesses_per_pair: u64,
    ) -> Self {
        PairTestClassifier {
            map,
            l2_ways,
            accesses_per_pair: accesses_per_pair.max(1),
            phase: Phase::Training { pair: 0 },
            accesses: 0,
            tested: vec![false; l2_lines],
            disabled: vec![false; l2_lines],
            dmr_saves: 0,
        }
    }

    /// True once every way pair has been characterized.
    pub fn steady(&self) -> bool {
        self.phase == Phase::Steady
    }

    /// Times the DMR path rescued data that SECDED alone could not.
    pub fn dmr_saves(&self) -> u64 {
        self.dmr_saves
    }

    /// Training-clock accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    fn way_of(&self, line: LineId) -> usize {
        line % self.l2_ways
    }

    /// Advances the training clock by one L2 access.
    fn tick(&mut self) {
        let Phase::Training { pair } = self.phase else {
            return;
        };
        self.accesses += 1;
        if !self.accesses.is_multiple_of(self.accesses_per_pair) {
            return;
        }
        // MBIST finished this pair: characterize its lines like the oracle.
        for line in 0..self.tested.len() {
            let way = self.way_of(line);
            if way / 2 == pair {
                self.tested[line] = true;
                let faults = self.map.data_fault_count(line)
                    + self.map.count_in(line, killi_fault::map::layout::SECDED);
                self.disabled[line] = faults >= 2;
            }
        }
        let next = pair + 1;
        self.phase = if next < self.l2_ways / 2 {
            Phase::Training { pair: next }
        } else {
            Phase::Steady
        };
    }
}

impl FaultClassifier for PairTestClassifier {
    fn victim_class(&self, line: LineId) -> Option<u8> {
        match self.phase {
            Phase::Training { pair } => {
                let way = self.way_of(line);
                if way / 2 == pair {
                    return None; // under MBIST test
                }
                if self.tested[line] {
                    return (!self.disabled[line]).then_some(0);
                }
                // Untested ways run DMR: odd ways mirror their even partner,
                // halving capacity (effective 7/16 of the cache).
                way.is_multiple_of(2).then_some(0)
            }
            Phase::Steady => (!self.disabled[line]).then_some(0),
        }
    }

    fn disabled_lines(&self) -> u64 {
        self.disabled.iter().filter(|&&d| d).count() as u64
    }

    fn on_access(&mut self) {
        self.tick();
    }

    fn observe(&mut self, line: LineId, verdict: CodecVerdict) {
        // A detected-uncorrectable pattern on an untested (DMR'd) line is
        // repaired by the duplicate copy; the pipeline still refreshes the
        // array content via an error miss, we just count the rescue.
        if verdict == CodecVerdict::Uncorrectable
            && matches!(self.phase, Phase::Training { .. })
            && !self.tested[line]
        {
            self.dmr_saves += 1;
        }
    }

    fn reset(&mut self) {
        self.phase = Phase::Training { pair: 0 };
        self.accesses = 0;
        for t in &mut self.tested {
            *t = false;
        }
        for d in &mut self.disabled {
            *d = false;
        }
    }

    fn fill_metrics(&self, _m: &mut MetricSet) {}
}

/// FLAIR with its online DMR + rotating-MBIST characterization phase.
pub struct FlairOnline {
    pipe: ProtectionPipeline<SecdedLineCodec, LineStore, PairTestClassifier, PassthroughPolicy>,
}

impl FlairOnline {
    /// Builds the scheme; `accesses_per_pair` controls how long each MBIST
    /// round lasts in L2 accesses.
    ///
    /// # Panics
    ///
    /// Panics if the fault map is too small or `l2_ways` is odd.
    pub fn new(
        map: Arc<FaultMap>,
        l2_lines: usize,
        l2_ways: usize,
        accesses_per_pair: u64,
    ) -> Self {
        match Self::try_new(map, l2_lines, l2_ways, accesses_per_pair) {
            Ok(scheme) => scheme,
            Err(message) => panic!("{message}"),
        }
    }

    /// Fallible construction (the registry path).
    pub fn try_new(
        map: Arc<FaultMap>,
        l2_lines: usize,
        l2_ways: usize,
        accesses_per_pair: u64,
    ) -> Result<Self, String> {
        if map.lines() < l2_lines {
            return Err("fault map too small".to_string());
        }
        if !l2_ways.is_multiple_of(2) {
            return Err("way pairs need an even way count".to_string());
        }
        let classifier =
            PairTestClassifier::new(Arc::clone(&map), l2_lines, l2_ways, accesses_per_pair);
        Ok(FlairOnline {
            pipe: ProtectionPipeline::new(
                "flair-online",
                SecdedLineCodec::new(map),
                LineStore::new(l2_lines),
                classifier,
                PassthroughPolicy,
            ),
        })
    }

    /// True once every way pair has been characterized.
    pub fn steady(&self) -> bool {
        self.pipe.classifier().steady()
    }

    /// Times the DMR path rescued data that SECDED alone could not.
    pub fn dmr_saves(&self) -> u64 {
        self.pipe.classifier().dmr_saves()
    }
}

impl LineProtection for FlairOnline {
    fn name(&self) -> &str {
        self.pipe.name()
    }

    fn reset(&mut self) {
        self.pipe.reset();
    }

    fn victim_class(&self, line: LineId) -> Option<u8> {
        self.pipe.victim_class(line)
    }

    fn on_fill(&mut self, line: LineId, data: &Line512) -> FillOutcome {
        self.pipe.on_fill(line, data)
    }

    fn on_read_hit(&mut self, line: LineId, stored: &mut Line512) -> ReadOutcome {
        self.pipe.on_read_hit(line, stored)
    }

    fn on_evict(&mut self, line: LineId, stored: &Line512) {
        self.pipe.on_evict(line, stored);
    }

    fn hit_latency_extra(&self) -> u32 {
        self.pipe.hit_latency_extra()
    }

    fn attach_sink(&mut self, sink: Sink) {
        self.pipe.attach_sink(sink);
    }

    fn metrics(&self) -> MetricSet {
        self.pipe.metrics()
    }
}

impl std::fmt::Debug for FlairOnline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlairOnline")
            .field("phase", &self.pipe.classifier().phase)
            .field("accesses", &self.pipe.classifier().accesses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use killi_fault::map::CellFault;

    fn map_with(faults: Vec<(usize, Vec<CellFault>)>, lines: usize) -> Arc<FaultMap> {
        let mut per_line = vec![Vec::new(); lines];
        for (line, fs) in faults {
            per_line[line] = fs;
        }
        Arc::new(FaultMap::from_faults(per_line))
    }

    #[test]
    fn training_reduces_capacity_to_7_of_16() {
        let map = map_with(vec![], 32);
        let s = FlairOnline::new(map, 32, 16, 1000);
        // Set 0: ways 0..16. Pair 0 (ways 0,1) under test; odd untested
        // ways mirror even ones.
        let usable: Vec<usize> = (0..16).filter(|&w| s.victim_class(w).is_some()).collect();
        assert_eq!(usable, vec![2, 4, 6, 8, 10, 12, 14], "7 usable ways");
    }

    #[test]
    fn training_completes_after_all_pairs() {
        let map = map_with(
            vec![(
                0,
                vec![
                    CellFault {
                        cell: 1,
                        stuck: true,
                    },
                    CellFault {
                        cell: 2,
                        stuck: true,
                    },
                ],
            )],
            32,
        );
        let mut s = FlairOnline::new(map, 32, 16, 2);
        let data = Line512::zero();
        // 8 pairs x 2 accesses each.
        for i in 0..16 {
            s.on_fill((i % 8) as usize + 2, &data); // avoid untestable ways
        }
        assert!(s.steady(), "{s:?}");
        // Learned disable map matches the oracle: line 0 has 2 faults.
        assert_eq!(s.victim_class(0), None);
        assert_eq!(s.victim_class(1), Some(0));
        assert_eq!(s.protection_stats().disabled_lines, 1);
    }

    #[test]
    fn steady_state_corrects_single_faults() {
        let map = map_with(
            vec![(
                2,
                vec![CellFault {
                    cell: 9,
                    stuck: true,
                }],
            )],
            32,
        );
        let mut s = FlairOnline::new(Arc::clone(&map), 32, 16, 1);
        let data = Line512::zero();
        for i in 0..16 {
            s.on_fill(4 + (i % 4) as usize, &data);
        }
        assert!(s.steady());
        s.on_fill(2, &data);
        let mut arr = data;
        map.corrupt_data(2, &mut arr);
        match s.on_read_hit(2, &mut arr) {
            ReadOutcome::Clean { corrected, .. } => assert!(corrected),
            other => panic!("{other:?}"),
        }
        assert_eq!(arr, data);
    }

    #[test]
    fn reset_restarts_training() {
        let map = map_with(vec![], 32);
        let mut s = FlairOnline::new(map, 32, 16, 1);
        let data = Line512::zero();
        for i in 0..8 {
            s.on_fill(2 + (i % 4) as usize, &data);
        }
        assert!(s.steady());
        s.reset();
        assert!(!s.steady());
    }

    #[test]
    fn try_new_reports_odd_way_count() {
        let map = map_with(vec![], 32);
        let err = FlairOnline::try_new(map, 32, 15, 1).unwrap_err();
        assert_eq!(err, "way pairs need an even way count");
    }
}

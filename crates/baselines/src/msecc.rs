//! MS-ECC baseline: Orthogonal-Latin-Square-coded lines (Chishti et al.,
//! MICRO'09, as configured in the Killi paper's §5).
//!
//! MS-ECC protects every line with OLSC strong enough to correct ~11 faults
//! per 64B line, offering the highest usable capacity of all baselines at a
//! ~18x SECDED area cost (Table 5). We realize it with OLSC(m = 8, t = 2):
//! 2 corrections per 64-bit block, 256 checkbits per line. The MBIST oracle
//! disables the (vanishingly rare) lines exceeding per-block capability.
//! Checkbits are modelled as protected storage (not stuck-at corrupted) —
//! the paper likewise credits MS-ECC with full-strength correction; this
//! slightly favours MS-ECC and is recorded in EXPERIMENTS.md.

use std::sync::Arc;

use killi_ecc::bits::Line512;
use killi_ecc::olsc::{OlscDecode, OlscLine};
use killi_fault::map::{FaultMap, LineId};
use killi_obs::{Counter, KilliEvent, MetricSet, Sink};
use killi_sim::protection::{FillOutcome, LineProtection, ReadOutcome};

/// The MS-ECC protection scheme.
pub struct MsEcc {
    codec: OlscLine,
    disabled: Vec<bool>,
    codes: Vec<Option<Vec<bool>>>,
    corrections: u64,
    detections: u64,
    sink: Sink,
}

impl MsEcc {
    /// Builds MS-ECC over `l2_lines` lines with the paper's configuration.
    ///
    /// # Panics
    ///
    /// Panics if the fault map does not cover `l2_lines`.
    pub fn new(map: Arc<FaultMap>, l2_lines: usize) -> Self {
        Self::with_code(map, l2_lines, 8, 2)
    }

    /// Builds MS-ECC with a custom OLSC geometry (block width `m`,
    /// per-block correction `t`).
    ///
    /// # Panics
    ///
    /// Panics on unsupported OLSC parameters or an undersized fault map.
    pub fn with_code(map: Arc<FaultMap>, l2_lines: usize, m: usize, t: usize) -> Self {
        assert!(map.lines() >= l2_lines, "fault map too small");
        let codec = OlscLine::new(m, t);
        let block_bits = m * m;
        // Oracle: disable lines with more than `t` data faults in any block.
        let disabled = (0..l2_lines)
            .map(|l| {
                let mut per_block = vec![0usize; 512 / block_bits];
                for f in map.line(l) {
                    if (f.cell as usize) < 512 {
                        per_block[f.cell as usize / block_bits] += 1;
                    }
                }
                per_block.iter().any(|&n| n > t)
            })
            .collect();
        let _ = map;
        MsEcc {
            codec,
            disabled,
            codes: vec![None; l2_lines],
            corrections: 0,
            detections: 0,
            sink: Sink::none(),
        }
    }

    /// Number of lines the oracle disabled.
    pub fn disabled_count(&self) -> usize {
        self.disabled.iter().filter(|&&d| d).count()
    }

    /// Checkbits per line of the configured code.
    pub fn check_bits_per_line(&self) -> usize {
        self.codec.check_bits()
    }
}

impl LineProtection for MsEcc {
    fn name(&self) -> &str {
        "ms-ecc"
    }

    fn reset(&mut self) {
        for c in &mut self.codes {
            *c = None;
        }
    }

    fn victim_class(&self, line: LineId) -> Option<u8> {
        (!self.disabled[line]).then_some(0)
    }

    fn on_fill(&mut self, line: LineId, data: &Line512) -> FillOutcome {
        debug_assert!(!self.disabled[line], "fill into a disabled line");
        self.codes[line] = Some(self.codec.encode(data));
        FillOutcome::default()
    }

    fn on_read_hit(&mut self, line: LineId, stored: &mut Line512) -> ReadOutcome {
        let Some(code) = self.codes[line].as_deref() else {
            debug_assert!(false, "read hit without stored checkbits");
            return ReadOutcome::ErrorMiss { extra_cycles: 0 };
        };
        // Decode needs ownership-free access; clone the small bit vector.
        let code = code.to_vec();
        let outcome = match self.codec.decode(stored, &code) {
            OlscDecode::Clean => ReadOutcome::Clean {
                extra_cycles: 0,
                corrected: false,
            },
            OlscDecode::Corrected { bits } => {
                self.corrections += 1;
                let _ = bits;
                ReadOutcome::Clean {
                    extra_cycles: 0,
                    corrected: true,
                }
            }
            OlscDecode::Detected => {
                self.detections += 1;
                self.codes[line] = None;
                ReadOutcome::ErrorMiss { extra_cycles: 0 }
            }
        };
        self.sink.emit(|| KilliEvent::SyndromeObservation {
            line: line as u32,
            corrected: matches!(
                outcome,
                ReadOutcome::Clean {
                    corrected: true,
                    ..
                }
            ),
            detected: matches!(outcome, ReadOutcome::ErrorMiss { .. }),
        });
        outcome
    }

    fn on_evict(&mut self, line: LineId, _stored: &Line512) {
        self.codes[line] = None;
    }

    fn hit_latency_extra(&self) -> u32 {
        1 // majority-logic decoding is single-cycle-class logic
    }

    fn attach_sink(&mut self, sink: Sink) {
        self.sink = sink;
    }

    fn metrics(&self) -> MetricSet {
        let mut m = MetricSet::new();
        m.set(Counter::DisabledLines, self.disabled_count() as u64);
        m.set(Counter::Corrections, self.corrections);
        m.set(Counter::Detections, self.detections);
        m
    }
}

impl std::fmt::Debug for MsEcc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsEcc")
            .field("disabled", &self.disabled_count())
            .field("check_bits", &self.check_bits_per_line())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use killi_fault::map::CellFault;

    fn fault(cell: u16) -> CellFault {
        CellFault { cell, stuck: true }
    }

    fn map_with(faults: Vec<(usize, Vec<CellFault>)>) -> Arc<FaultMap> {
        let mut per_line = vec![Vec::new(); 16];
        for (line, fs) in faults {
            per_line[line] = fs;
        }
        Arc::new(FaultMap::from_faults(per_line))
    }

    #[test]
    fn corrects_many_spread_faults() {
        // 8 faults, one per 64-bit block: all correctable.
        let cells: Vec<CellFault> = (0..8).map(|b| fault(b * 64 + 3)).collect();
        let map = map_with(vec![(0, cells)]);
        let mut s = MsEcc::new(Arc::clone(&map), 16);
        assert_eq!(s.disabled_count(), 0);
        let data = Line512::zero();
        s.on_fill(0, &data);
        let mut arr = data;
        map.corrupt_data(0, &mut arr);
        assert_eq!(arr.count_ones(), 8);
        match s.on_read_hit(0, &mut arr) {
            ReadOutcome::Clean { corrected, .. } => assert!(corrected),
            other => panic!("{other:?}"),
        }
        assert_eq!(arr, data);
    }

    #[test]
    fn oracle_disables_overloaded_blocks() {
        // 3 faults in one 64-bit block exceed t = 2.
        let map = map_with(vec![(0, vec![fault(1), fault(9), fault(17)])]);
        let s = MsEcc::new(map, 16);
        assert_eq!(s.disabled_count(), 1);
        assert_eq!(s.victim_class(0), None);
    }

    #[test]
    fn eleven_fault_line_usable() {
        // The paper's "corrects up to 11 errors in a 64B line" scenario,
        // spread <= 2 per block.
        let cells: Vec<CellFault> = [3u16, 40, 70, 100, 140, 180, 210, 260, 330, 400, 480]
            .iter()
            .map(|&c| fault(c))
            .collect();
        let map = map_with(vec![(0, cells)]);
        let mut s = MsEcc::new(Arc::clone(&map), 16);
        assert_eq!(s.disabled_count(), 0);
        let data = Line512::from_seed(9);
        s.on_fill(0, &data);
        let mut arr = data;
        map.corrupt_data(0, &mut arr);
        if arr != data {
            match s.on_read_hit(0, &mut arr) {
                ReadOutcome::Clean { .. } => {}
                other => panic!("{other:?}"),
            }
            assert_eq!(arr, data);
        }
    }

    #[test]
    fn clean_lines_pass_through() {
        let map = map_with(vec![]);
        let mut s = MsEcc::new(map, 16);
        let data = Line512::from_seed(5);
        s.on_fill(0, &data);
        let mut arr = data;
        match s.on_read_hit(0, &mut arr) {
            ReadOutcome::Clean { corrected, .. } => assert!(!corrected),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn check_bit_budget_matches_paper_scale() {
        let map = map_with(vec![]);
        let s = MsEcc::new(map, 16);
        // 256 checkbits per 512-bit line: the ~18x-SECDED area class.
        assert_eq!(s.check_bits_per_line(), 256);
    }
}

//! MS-ECC baseline: Orthogonal-Latin-Square-coded lines (Chishti et al.,
//! MICRO'09, as configured in the Killi paper's §5).
//!
//! MS-ECC protects every line with OLSC strong enough to correct ~11 faults
//! per 64B line, offering the highest usable capacity of all baselines at a
//! ~18x SECDED area cost (Table 5). We realize it with OLSC(m = 8, t = 2):
//! 2 corrections per 64-bit block, 256 checkbits per line. The MBIST oracle
//! disables the (vanishingly rare) lines exceeding per-block capability.
//! Checkbits are modelled as protected storage (not stuck-at corrupted) —
//! the paper likewise credits MS-ECC with full-strength correction; this
//! slightly favours MS-ECC and is recorded in EXPERIMENTS.md.
//!
//! The scheme is the pipeline composition [`OlscBlockCodec`] +
//! [`LineStore`] + [`OracleClassifier`] + [`PassthroughPolicy`].

use std::sync::Arc;

use killi::pipeline::{
    LineStore, OlscBlockCodec, OracleClassifier, PassthroughPolicy, ProtectionPipeline,
};
use killi_ecc::bits::Line512;
use killi_fault::map::{FaultMap, LineId};
use killi_obs::{MetricSet, Sink};
use killi_sim::protection::{FillOutcome, LineProtection, ReadOutcome};

/// The MS-ECC protection scheme.
pub struct MsEcc {
    pipe: ProtectionPipeline<OlscBlockCodec, LineStore, OracleClassifier, PassthroughPolicy>,
}

impl MsEcc {
    /// Builds MS-ECC over `l2_lines` lines with the paper's configuration.
    ///
    /// # Panics
    ///
    /// Panics if the fault map does not cover `l2_lines`.
    pub fn new(map: Arc<FaultMap>, l2_lines: usize) -> Self {
        Self::with_code(map, l2_lines, 8, 2)
    }

    /// Builds MS-ECC with a custom OLSC geometry (block width `m`,
    /// per-block correction `t`).
    ///
    /// # Panics
    ///
    /// Panics on unsupported OLSC parameters or an undersized fault map.
    pub fn with_code(map: Arc<FaultMap>, l2_lines: usize, m: usize, t: usize) -> Self {
        match Self::try_with_code(map, l2_lines, m, t) {
            Ok(scheme) => scheme,
            Err(message) => panic!("{message}"),
        }
    }

    /// Fallible construction (the registry path): validates the OLSC
    /// geometry and map coverage instead of panicking.
    pub fn try_with_code(
        map: Arc<FaultMap>,
        l2_lines: usize,
        m: usize,
        t: usize,
    ) -> Result<Self, String> {
        if map.lines() < l2_lines {
            return Err("fault map too small".to_string());
        }
        if !matches!(m, 4 | 8 | 16) {
            return Err(format!("OLSC block width m={m} is not one of 4, 8, 16"));
        }
        if t == 0 || 2 * t > m + 1 {
            return Err(format!(
                "OLSC t={t} out of range for m={m} (need 1 <= t, 2t <= m+1)"
            ));
        }
        if 2 * t * m > 256 {
            return Err(format!(
                "OLSC({m}, {t}) checkbits ({}) exceed the 256-bit payload",
                2 * t * m
            ));
        }
        // Oracle: disable lines with more than `t` data faults in any block.
        let oracle = OracleClassifier::from_block_budget(&map, l2_lines, m * m, t);
        Ok(MsEcc {
            pipe: ProtectionPipeline::new(
                "ms-ecc",
                OlscBlockCodec::new(m, t),
                LineStore::new(l2_lines),
                oracle,
                PassthroughPolicy,
            ),
        })
    }

    /// Number of lines the oracle disabled.
    pub fn disabled_count(&self) -> usize {
        self.pipe.classifier().disabled_count()
    }

    /// Checkbits per line of the configured code.
    pub fn check_bits_per_line(&self) -> usize {
        self.pipe.codec().check_bits()
    }
}

impl LineProtection for MsEcc {
    fn name(&self) -> &str {
        self.pipe.name()
    }

    fn reset(&mut self) {
        self.pipe.reset();
    }

    fn victim_class(&self, line: LineId) -> Option<u8> {
        self.pipe.victim_class(line)
    }

    fn on_fill(&mut self, line: LineId, data: &Line512) -> FillOutcome {
        self.pipe.on_fill(line, data)
    }

    fn on_read_hit(&mut self, line: LineId, stored: &mut Line512) -> ReadOutcome {
        self.pipe.on_read_hit(line, stored)
    }

    fn on_evict(&mut self, line: LineId, stored: &Line512) {
        self.pipe.on_evict(line, stored);
    }

    fn hit_latency_extra(&self) -> u32 {
        self.pipe.hit_latency_extra() // majority-logic decoding is single-cycle-class logic
    }

    fn attach_sink(&mut self, sink: Sink) {
        self.pipe.attach_sink(sink);
    }

    fn metrics(&self) -> MetricSet {
        self.pipe.metrics()
    }
}

impl std::fmt::Debug for MsEcc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsEcc")
            .field("disabled", &self.disabled_count())
            .field("check_bits", &self.check_bits_per_line())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use killi_fault::map::CellFault;

    fn fault(cell: u16) -> CellFault {
        CellFault { cell, stuck: true }
    }

    fn map_with(faults: Vec<(usize, Vec<CellFault>)>) -> Arc<FaultMap> {
        let mut per_line = vec![Vec::new(); 16];
        for (line, fs) in faults {
            per_line[line] = fs;
        }
        Arc::new(FaultMap::from_faults(per_line))
    }

    #[test]
    fn corrects_many_spread_faults() {
        // 8 faults, one per 64-bit block: all correctable.
        let cells: Vec<CellFault> = (0..8).map(|b| fault(b * 64 + 3)).collect();
        let map = map_with(vec![(0, cells)]);
        let mut s = MsEcc::new(Arc::clone(&map), 16);
        assert_eq!(s.disabled_count(), 0);
        let data = Line512::zero();
        s.on_fill(0, &data);
        let mut arr = data;
        map.corrupt_data(0, &mut arr);
        assert_eq!(arr.count_ones(), 8);
        match s.on_read_hit(0, &mut arr) {
            ReadOutcome::Clean { corrected, .. } => assert!(corrected),
            other => panic!("{other:?}"),
        }
        assert_eq!(arr, data);
    }

    #[test]
    fn oracle_disables_overloaded_blocks() {
        // 3 faults in one 64-bit block exceed t = 2.
        let map = map_with(vec![(0, vec![fault(1), fault(9), fault(17)])]);
        let s = MsEcc::new(map, 16);
        assert_eq!(s.disabled_count(), 1);
        assert_eq!(s.victim_class(0), None);
    }

    #[test]
    fn eleven_fault_line_usable() {
        // The paper's "corrects up to 11 errors in a 64B line" scenario,
        // spread <= 2 per block.
        let cells: Vec<CellFault> = [3u16, 40, 70, 100, 140, 180, 210, 260, 330, 400, 480]
            .iter()
            .map(|&c| fault(c))
            .collect();
        let map = map_with(vec![(0, cells)]);
        let mut s = MsEcc::new(Arc::clone(&map), 16);
        assert_eq!(s.disabled_count(), 0);
        let data = Line512::from_seed(9);
        s.on_fill(0, &data);
        let mut arr = data;
        map.corrupt_data(0, &mut arr);
        if arr != data {
            match s.on_read_hit(0, &mut arr) {
                ReadOutcome::Clean { .. } => {}
                other => panic!("{other:?}"),
            }
            assert_eq!(arr, data);
        }
    }

    #[test]
    fn clean_lines_pass_through() {
        let map = map_with(vec![]);
        let mut s = MsEcc::new(map, 16);
        let data = Line512::from_seed(5);
        s.on_fill(0, &data);
        let mut arr = data;
        match s.on_read_hit(0, &mut arr) {
            ReadOutcome::Clean { corrected, .. } => assert!(!corrected),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn check_bit_budget_matches_paper_scale() {
        let map = map_with(vec![]);
        let s = MsEcc::new(map, 16);
        // 256 checkbits per 512-bit line: the ~18x-SECDED area class.
        assert_eq!(s.check_bits_per_line(), 256);
    }

    #[test]
    fn try_with_code_reports_bad_geometry() {
        let map = map_with(vec![]);
        let err = MsEcc::try_with_code(Arc::clone(&map), 16, 5, 2).unwrap_err();
        assert!(err.contains("block width"), "{err}");
        let err = MsEcc::try_with_code(Arc::clone(&map), 16, 8, 5).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = MsEcc::try_with_code(map, 64, 8, 2).unwrap_err();
        assert_eq!(err, "fault map too small");
    }
}
